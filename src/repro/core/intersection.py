"""Set intersection — Minesweeper end-to-end (paper Appendix H, Algorithm 8).

Q∩ = S1(A) ⋈ ... ⋈ Sm(A): intersect m sorted sets.  The CDS degenerates to
a single :class:`IntervalList` over A.  Each iteration probes every set
around the active value t with one binary search (a ``FindGap``); either t
is in every set (output it, rule out exactly t) or some set contributes a
gap (S_i[x_l], S_i[x_h]) ∋ t.

The number of iterations is O(|C| + Z) (Theorem H.4): Minesweeper's work
tracks how *interleaved* the sets are, not how large they are — the
adaptive behaviour of Demaine–López-Ortiz–Munro / Barbay–Kenyon that the
paper generalizes.

``merge_intersection`` is the classic m-way merge baseline: linear in the
total input size regardless of the certificate.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Sequence, Tuple

from repro.storage.interval_list import IntervalList
from repro.util.counters import OpCounters
from repro.util.sentinels import NEG_INF, POS_INF, ExtendedValue


def _check_sorted_sets(sets: Sequence[Sequence[int]]) -> List[List[int]]:
    if not sets:
        raise ValueError("need at least one set")
    cleaned: List[List[int]] = []
    for i, s in enumerate(sets):
        data = list(s)
        if any(data[j] >= data[j + 1] for j in range(len(data) - 1)):
            raise ValueError(f"set {i} must be strictly increasing")
        cleaned.append(data)
    return cleaned


def intersect_sorted(
    sets: Sequence[Sequence[int]],
    counters: Optional[OpCounters] = None,
) -> List[int]:
    """Intersect sorted integer sets with Minesweeper (Algorithm 8)."""
    counters = counters if counters is not None else OpCounters()
    data = _check_sorted_sets(sets)
    if any(not s for s in data):
        return []
    cds = IntervalList()
    output: List[int] = []
    start = min(s[0] for s in data)  # every value below start is inactive
    cds.insert(NEG_INF, start)
    while True:
        counters.interval_ops += 1
        t = cds.next(start)
        if t is POS_INF:
            break
        counters.probes += 1
        is_member = True
        for s in data:
            counters.findgap += 1
            i = bisect.bisect_left(s, t)
            present = i < len(s) and s[i] == t
            if present:
                continue
            is_member = False
            low: ExtendedValue = s[i - 1] if i > 0 else NEG_INF
            high: ExtendedValue = s[i] if i < len(s) else POS_INF
            counters.constraints += 1
            cds.insert(low, high)
        if is_member:
            output.append(t)  # type: ignore[arg-type]
            counters.output_tuples += 1
            counters.constraints += 1
            cds.insert(t - 1, t + 1)  # type: ignore[operator]
    return output


def merge_intersection(
    sets: Sequence[Sequence[int]],
    counters: Optional[OpCounters] = None,
) -> List[int]:
    """Baseline m-way merge intersection: Θ(N) comparisons always."""
    counters = counters if counters is not None else OpCounters()
    data = _check_sorted_sets(sets)
    if any(not s for s in data):
        return []
    positions = [0] * len(data)
    output: List[int] = []
    while all(positions[i] < len(data[i]) for i in range(len(data))):
        heads = [data[i][positions[i]] for i in range(len(data))]
        counters.comparisons += len(heads)
        top = max(heads)
        if all(h == top for h in heads):
            output.append(top)
            counters.output_tuples += 1
            for i in range(len(data)):
                positions[i] += 1
            continue
        for i in range(len(data)):
            while positions[i] < len(data[i]) and data[i][positions[i]] < top:
                positions[i] += 1
                counters.comparisons += 1
    return output


def partition_certificate(
    sets: Sequence[Sequence[int]],
) -> List[Tuple[str, object]]:
    """The Barbay–Kenyon *partition certificate* of the instance (§6.2).

    A partition certificate is a sequence of items covering the value
    line, each either

    * ``("gap", (low, high, witness))`` — an open interval containing no
      output, eliminated because set ``witness`` has no element in it, or
    * ``("output", v)`` — a value present in every set.

    Verified by tests to (a) tile the whole line and (b) be sound.  The
    paper observes these partitions correspond to the gap sets
    Minesweeper discovers — and indeed this function is the Minesweeper
    loop with the CDS's stored intervals read back out.
    """
    data = _check_sorted_sets(sets)
    items: List[Tuple[str, object]] = []
    if any(not s for s in data):
        empty = next(i for i, s in enumerate(data) if not s)
        items.append(("gap", (NEG_INF, POS_INF, empty)))
        return items
    # Run the Minesweeper loop, remembering every witness gap discovered.
    cds = IntervalList()
    outputs: List[int] = []
    witness_gaps: List[Tuple[ExtendedValue, ExtendedValue, int]] = []
    latest_start = max(range(len(data)), key=lambda i: data[i][0])
    witness_gaps.append((NEG_INF, data[latest_start][0], latest_start))
    start = min(s[0] for s in data)
    cds.insert(NEG_INF, start)
    while True:
        t = cds.next(start)
        if t is POS_INF:
            break
        member = True
        for i, s in enumerate(data):
            j = bisect.bisect_left(s, t)
            if j < len(s) and s[j] == t:
                continue
            member = False
            low: ExtendedValue = s[j - 1] if j > 0 else NEG_INF
            high: ExtendedValue = s[j] if j < len(s) else POS_INF
            witness_gaps.append((low, high, i))
            cds.insert(low, high)
        if member:
            outputs.append(t)  # type: ignore[arg-type]
            cds.insert(t - 1, t + 1)  # type: ignore[operator]
    # Greedy tiling: from the frontier (all integers <= frontier are
    # certified), either the next integer is an output, or some recorded
    # gap covers it — take the one reaching furthest right.
    output_set = set(outputs)
    frontier: ExtendedValue = NEG_INF
    guard = 0
    while guard <= 4 * len(witness_gaps) + len(outputs) + 4:
        guard += 1
        if frontier is not POS_INF and frontier is not NEG_INF:
            nxt = frontier + 1  # type: ignore[operator]
            if nxt in output_set:
                items.append(("output", nxt))
                frontier = nxt
                continue
        candidates = [
            (low, high, who)
            for low, high, who in witness_gaps
            if low is NEG_INF
            or (frontier is not NEG_INF and low <= frontier)
        ]
        if not candidates:
            raise AssertionError("partition tiling stalled; recorder bug")
        low, high, who = max(
            candidates,
            key=lambda g: (
                g[1] is POS_INF,
                g[1] if g[1] is not POS_INF else 0,
            ),
        )
        items.append(("gap", (low, high, who)))
        if high is POS_INF:
            return items
        assert isinstance(high, int)
        new_frontier = high if high in output_set else high - 1
        if high in output_set:
            items.append(("output", high))
        if frontier is not NEG_INF and new_frontier <= frontier:
            raise AssertionError("partition tiling made no progress")
        frontier = new_frontier
    raise AssertionError("partition tiling did not terminate")


def intersection_certificate_size(sets: Sequence[Sequence[int]]) -> int:
    """Size of the natural gap certificate for the intersection instance.

    Counts one comparison per maximal 'eliminating' gap plus a spanning set
    of equalities per output value — the Barbay–Kenyon partition-certificate
    view that Appendix H shows Minesweeper matches up to constants.
    """
    data = _check_sorted_sets(sets)
    if any(not s for s in data):
        return 1
    cds = IntervalList()
    output_equalities = 0
    start = min(s[0] for s in data)
    cds.insert(NEG_INF, start)
    comparisons = 0
    while True:
        t = cds.next(start)
        if t is POS_INF:
            break
        member = True
        for s in data:
            i = bisect.bisect_left(s, t)
            if i < len(s) and s[i] == t:
                continue
            member = False
            comparisons += 2 if 0 < i < len(s) else 1
            low: ExtendedValue = s[i - 1] if i > 0 else NEG_INF
            high: ExtendedValue = s[i] if i < len(s) else POS_INF
            cds.insert(low, high)
        if member:
            output_equalities += len(data) - 1
            cds.insert(t - 1, t + 1)  # type: ignore[operator]
    return comparisons + output_equalities
