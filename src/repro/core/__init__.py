"""Core: the Minesweeper join algorithm and its constraint data structure."""

from repro.core.cds import CDSNode, ConstraintTree
from repro.core.cds_arena import (
    ArenaChainProbeStrategy,
    ArenaConstraintTree,
    ArenaGeneralProbeStrategy,
    CDS_BACKENDS,
    DEFAULT_CDS_BACKEND,
    make_cds,
    make_probe_strategy,
    resolve_cds_backend,
)
from repro.core.constraints import (
    WILDCARD,
    Constraint,
    constraint_from_values,
    equality_count,
    generalizes_prefix,
    last_equality_position,
    meet,
    specializes,
)
from repro.core.bowtie import BowtieMinesweeper, bowtie_join
from repro.core.engine import JoinResult, join
from repro.core.explain import Explanation, explain, format_explanation
from repro.core.gao_search import (
    GaoSearchResult,
    all_nested_elimination_orders,
    estimate_certificate,
    search_gao,
)
from repro.core.incremental import LiveJoin, consistent_gao
from repro.core.intersection import (
    intersect_sorted,
    intersection_certificate_size,
    partition_certificate,
    merge_intersection,
)
from repro.core.minesweeper import Minesweeper, MinesweeperError, minesweeper_join
from repro.core.probe_acyclic import ChainProbeStrategy, NotAChainError, sort_as_chain
from repro.core.probe_general import GeneralProbeStrategy
from repro.core.query import PreparedQuery, Query, naive_join
from repro.core.triangle import DyadicTree, TriangleMinesweeper, triangle_join
from repro.core.triangle_arena import ArenaTriangleMinesweeper

__all__ = [
    "ArenaChainProbeStrategy",
    "ArenaConstraintTree",
    "ArenaGeneralProbeStrategy",
    "ArenaTriangleMinesweeper",
    "CDS_BACKENDS",
    "DEFAULT_CDS_BACKEND",
    "make_cds",
    "make_probe_strategy",
    "resolve_cds_backend",
    "CDSNode",
    "ConstraintTree",
    "WILDCARD",
    "Constraint",
    "constraint_from_values",
    "equality_count",
    "generalizes_prefix",
    "last_equality_position",
    "meet",
    "specializes",
    "JoinResult",
    "join",
    "Explanation",
    "explain",
    "format_explanation",
    "GaoSearchResult",
    "all_nested_elimination_orders",
    "estimate_certificate",
    "search_gao",
    "partition_certificate",
    "LiveJoin",
    "consistent_gao",
    "Minesweeper",
    "MinesweeperError",
    "minesweeper_join",
    "ChainProbeStrategy",
    "NotAChainError",
    "sort_as_chain",
    "GeneralProbeStrategy",
    "BowtieMinesweeper",
    "bowtie_join",
    "intersect_sorted",
    "intersection_certificate_size",
    "merge_intersection",
    "DyadicTree",
    "TriangleMinesweeper",
    "triangle_join",
    "PreparedQuery",
    "Query",
    "naive_join",
]
