"""Triangle query Q△ = R(A,B) ⋈ S(B,C) ⋈ T(A,C) with the dyadic-tree CDS.

Paper Theorem 5.4 / Appendix L: the generic ConstraintTree spends Θ(|C|²)
work on hard triangle instances because it revisits Ω(|C|²) (a, b) pairs.
The specialized CDS keeps, for every *dyadic interval* x of the B domain,
an interval list

    I(*, x)  =  ⋂_{b ∈ x} I(*, =b)        (invariant (7))

of C-gaps that hold simultaneously for every b in x, so a whole dyadic
block of b values can be dismissed in one cached comparison.  Probe search
(Algorithm 10) walks the dyadic tree in pre-order with a per-(a, node)
cache of the last viable C candidate.

Implementation notes (documented deviations, all behaviour-preserving):

* Values are coordinate-compressed into rank space per column pair — only
  dictionary values can be output tuples, and gap endpoints are data
  values, so constraints translate monotonically.
* Algorithm 10 leaves two gaps a literal transcription would trip over:
  (i) when line 9 finds no viable b it loops to i=0 without ruling out
  ``a`` — we insert ⟨(a-1, a+1), *, *⟩ (sound: every b is dead for this a);
  (ii) the pre-order walk can land on a leaf b covered by I(=a) ∪ I(*) —
  we hop to the next sibling instead of returning an inactive probe.
* Output suppression uses the accompanying ``Cache(a, b, c+1)`` call the
  paper prescribes (leaf caches only; bumping internal caches on output
  would be unsound for sibling leaves).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.storage.interval_list import IntervalList, interval_is_empty
from repro.storage.trie import TrieRelation
from repro.util.counters import OpCounters
from repro.util.sentinels import NEG_INF, POS_INF, ExtendedValue

Edge = Tuple[int, int]


class _Dict:
    """A sorted value dictionary with rank translation (one per column)."""

    __slots__ = ("values", "rank_of")

    def __init__(self, values) -> None:
        self.values: List[int] = sorted(set(values))
        self.rank_of: Dict[int, int] = {
            v: i for i, v in enumerate(self.values)
        }

    def __len__(self) -> int:
        return len(self.values)

    def to_rank(self, value: ExtendedValue) -> ExtendedValue:
        """Exact rank of a dictionary value; infinities pass through."""
        if value is NEG_INF or value is POS_INF:
            return value
        return self.rank_of[value]


class DyadicTree:
    """Interval lists I(*, x) for every dyadic B-interval x (App. L.1)."""

    def __init__(self, n_leaves: int, counters: OpCounters) -> None:
        self.depth = max(1, (max(n_leaves, 1) - 1).bit_length())
        self.n_leaves = n_leaves
        self.counters = counters
        self._lists: Dict[Tuple[int, int], IntervalList] = {}

    def node_list(self, level: int, index: int) -> Optional[IntervalList]:
        return self._lists.get((level, index))

    def _list_for(self, level: int, index: int) -> IntervalList:
        key = (level, index)
        lst = self._lists.get(key)
        if lst is None:
            lst = IntervalList()
            self._lists[key] = lst
        return lst

    def insert_leaf(
        self, leaf: int, low: ExtendedValue, high: ExtendedValue
    ) -> None:
        """Insert a C-gap for one b value and restore invariant (7) upward.

        Follows Proposition L.1: only the genuinely new parts float up, and
        a part rises only where the sibling already covers it.
        """
        if interval_is_empty(low, high):
            return
        level, index = self.depth, leaf
        node = self._list_for(level, index)
        parts = node.uncovered_runs(low, high)
        node.insert(low, high)
        self.counters.interval_ops += 1
        while level > 0 and parts:
            sibling = self._lists.get((level, index ^ 1))
            parent = self._list_for(level - 1, index >> 1)
            lifted: List[Tuple[ExtendedValue, ExtendedValue]] = []
            for lo, hi in parts:
                if sibling is None:
                    continue
                for cov_lo, cov_hi in sibling.covered_runs(lo, hi):
                    lifted.extend(parent.uncovered_runs(cov_lo, cov_hi))
                    parent.insert(cov_lo, cov_hi)
                    self.counters.interval_ops += 1
            parts = lifted
            level -= 1
            index >>= 1

    def check_invariant(self) -> None:
        """Assert I(*, x) = I(*, x0) ∩ I(*, x1) on the materialized tree.

        Used by tests.  Verified pointwise over the integer hull of the
        finite endpoints.
        """
        points = set()
        for lst in self._lists.values():
            for lo, hi in lst.intervals():
                for v in (lo, hi):
                    if v is not NEG_INF and v is not POS_INF:
                        points.add(v)
        probe_points = sorted(points | {p + 1 for p in points} | {-1, 0})
        for (level, index), lst in self._lists.items():
            if level == self.depth:
                continue
            left = self._lists.get((level + 1, 2 * index))
            right = self._lists.get((level + 1, 2 * index + 1))
            for v in probe_points:
                parent_covers = lst.covers(v)
                child_covers = (
                    left is not None
                    and right is not None
                    and left.covers(v)
                    and right.covers(v)
                )
                if parent_covers and not child_covers:
                    raise AssertionError(
                        f"I(*,{(level, index)}) covers {v} but children do not"
                    )


def _next_union(
    first: IntervalList,
    second: Optional[IntervalList],
    start: int,
    counters: OpCounters,
) -> ExtendedValue:
    """Smallest v >= start not covered by either list (MERGE-style)."""
    value: ExtendedValue = start
    while True:
        counters.interval_ops += 1
        step_one = first.next(value)  # type: ignore[arg-type]
        if step_one is POS_INF:
            return POS_INF
        if second is None:
            return step_one
        counters.interval_ops += 1
        step_two = second.next(step_one)  # type: ignore[arg-type]
        if step_two is POS_INF:
            return POS_INF
        if step_two == step_one:
            return step_two
        value = step_two


class TriangleMinesweeper:
    """Algorithm 10: Minesweeper for Q△ in Õ(|C|^{3/2} + Z).

    Parameters are edge lists: R ⊆ A×B, S ⊆ B×C, T ⊆ A×C.  ``run`` returns
    the triangles (a, b, c) in GAO order (A, B, C).
    """

    def __init__(
        self,
        r_edges: Sequence[Edge],
        s_edges: Sequence[Edge],
        t_edges: Sequence[Edge],
        counters: Optional[OpCounters] = None,
    ) -> None:
        self.counters = counters if counters is not None else OpCounters()
        self.r_index = TrieRelation(r_edges, arity=2, counters=self.counters)
        self.s_index = TrieRelation(s_edges, arity=2, counters=self.counters)
        self.t_index = TrieRelation(t_edges, arity=2, counters=self.counters)
        r_rows = self.r_index.tuples()
        s_rows = self.s_index.tuples()
        t_rows = self.t_index.tuples()
        self.a_dict = _Dict(
            [a for a, _ in r_rows] + [a for a, _ in t_rows]
        )
        self.b_dict = _Dict(
            [b for _, b in r_rows] + [b for b, _ in s_rows]
        )
        self.c_dict = _Dict(
            [c for _, c in s_rows] + [c for _, c in t_rows]
        )
        # CDS state, all in rank space.
        self.i_root = IntervalList()  # gaps on A
        self.i_star_b = IntervalList()  # ⟨*, (b1,b2), *⟩
        self.i_eq_a: Dict[int, IntervalList] = {}  # ⟨a, (b1,b2), *⟩
        self.i_eq_a_star: Dict[int, IntervalList] = {}  # ⟨a, *, (c1,c2)⟩
        self.dyadic = DyadicTree(len(self.b_dict), self.counters)
        # Padding leaves (the B domain rounded up to a power of two) carry
        # no real b value; mark them fully covered so invariant (7) can
        # propagate real coverage all the way to the root.
        for leaf in range(len(self.b_dict), 1 << self.dyadic.depth):
            self.dyadic.insert_leaf(leaf, NEG_INF, POS_INF)
        self._cache: Dict[Tuple[int, int, int], int] = {}
        # (a, level, index) -> last viable C candidate at that node.

    # ------------------------------------------------------------------
    # Cache
    # ------------------------------------------------------------------

    def _get_cache(self, a: int, level: int, index: int) -> int:
        value = self._cache.get((a, level, index), -1)
        if (a, level, index) in self._cache:
            self.counters.cache_hits += 1
        else:
            self.counters.cache_misses += 1
        return value

    def _set_cache(self, a: int, level: int, index: int, value: int) -> None:
        self._cache[(a, level, index)] = value

    # ------------------------------------------------------------------
    # Constraint insertion helpers (rank space)
    # ------------------------------------------------------------------

    def _eq_a_list(self, a: int) -> IntervalList:
        lst = self.i_eq_a.get(a)
        if lst is None:
            lst = IntervalList()
            self.i_eq_a[a] = lst
        return lst

    def _eq_a_star_list(self, a: int) -> IntervalList:
        lst = self.i_eq_a_star.get(a)
        if lst is None:
            lst = IntervalList()
            self.i_eq_a_star[a] = lst
        return lst

    # ------------------------------------------------------------------
    # Probe search (Algorithm 10)
    # ------------------------------------------------------------------

    def _next_sibling(
        self, level: int, index: int
    ) -> Optional[Tuple[int, int]]:
        """Pre-order next sibling: flip the last 0 bit, drop the tail."""
        while level > 0:
            if index % 2 == 0:
                return (level, index + 1)
            level -= 1
            index >>= 1
        return None

    def get_probe_point(self) -> Optional[Tuple[int, int, int]]:
        """Return an active (a, b, c) in rank space, or None."""
        counters = self.counters
        if not self.a_dict or not self.b_dict or not self.c_dict:
            return None
        n_a, n_b, n_c = len(self.a_dict), len(self.b_dict), len(self.c_dict)
        while True:
            counters.interval_ops += 1
            a = self.i_root.next(0)  # smallest free a >= 0
            if a is POS_INF or a >= n_a:
                return None
            eq_a = self.i_eq_a.get(a)
            b_probe = _next_union(self.i_star_b, eq_a, 0, counters)
            if b_probe is POS_INF or b_probe >= n_b:
                # No b is viable for this a: rule the a out (sound; see
                # module docstring) and retry.
                self.i_root.insert(a - 1, a + 1)
                continue
            eq_a_star = self.i_eq_a_star.get(a)
            if eq_a_star is not None:
                counters.interval_ops += 1
                first_free_c = eq_a_star.next(0)
                if first_free_c is POS_INF or first_free_c >= n_c:
                    self.i_root.insert(a - 1, a + 1)
                    continue
            found = self._descend(a, n_b, n_c)
            if found is None:
                # Dyadic walk exhausted every b for this a.
                self.i_root.insert(a - 1, a + 1)
                continue
            return found

    def _descend(
        self, a: int, n_b: int, n_c: int
    ) -> Optional[Tuple[int, int, int]]:
        """Walk the dyadic tree in pre-order; return (a, b, c) or None."""
        counters = self.counters
        eq_a_star = self.i_eq_a_star.get(a)
        eq_a = self.i_eq_a.get(a)
        depth = self.dyadic.depth
        level, index = 0, 0
        while True:
            at_leaf = level == depth
            leaf_value = index if at_leaf else None
            if at_leaf and (
                index >= n_b
                or (eq_a is not None and eq_a.covers(index))
                or self.i_star_b.covers(index)
            ):
                # Inactive leaf (padding or covered b): hop to the sibling.
                step = self._next_sibling(level, index)
                if step is None:
                    return None
                level, index = step
                continue
            z = self._get_cache(a, level, index)
            node_list = self.dyadic.node_list(level, index)
            if eq_a_star is None and node_list is None:
                c: ExtendedValue = max(z, 0)
            else:
                base = eq_a_star if eq_a_star is not None else node_list
                other = node_list if eq_a_star is not None else None
                c = _next_union(base, other, max(z, 0), counters)  # type: ignore[arg-type]
            if c is not POS_INF and c < n_c:
                self._set_cache(a, level, index, c)  # type: ignore[arg-type]
                if at_leaf:
                    assert leaf_value is not None
                    return (a, leaf_value, c)  # type: ignore[return-value]
                level, index = level + 1, 2 * index
                continue
            # Every c is dead for all b in this dyadic block: record the
            # block as a B-gap for this a and hop to the next sibling.
            self._set_cache(a, level, index, n_c)
            block = 1 << (depth - level)
            lo, hi = index * block - 1, (index + 1) * block
            self._eq_a_list(a).insert(lo, hi)
            counters.interval_ops += 1
            step = self._next_sibling(level, index)
            if step is None:
                return None
            level, index = step

    # ------------------------------------------------------------------
    # Outer loop
    # ------------------------------------------------------------------

    def run(self, max_probes: Optional[int] = None) -> List[Tuple[int, int, int]]:
        """Enumerate all triangles (a, b, c)."""
        counters = self.counters
        output: List[Tuple[int, int, int]] = []
        n = (
            len(self.r_index)
            + len(self.s_index)
            + len(self.t_index)
        )
        budget = max_probes if max_probes is not None else 1000 + 200 * (n + 1)
        while True:
            probe = self.get_probe_point()
            if probe is None:
                break
            counters.probes += 1
            if counters.probes - counters.output_tuples > budget:
                raise RuntimeError(
                    f"triangle probe budget exhausted at {probe}"
                )
            a_rank, b_rank, c_rank = probe
            a = self.a_dict.values[a_rank]
            b = self.b_dict.values[b_rank]
            c = self.c_dict.values[c_rank]
            is_member = self._explore(a_rank, b_rank, c_rank, a, b, c)
            if is_member:
                output.append((a, b, c))
                counters.output_tuples += 1
                self._set_cache(
                    a_rank, self.dyadic.depth, b_rank, c_rank + 1
                )
        return sorted(output)

    def _explore(
        self, a_rank: int, b_rank: int, c_rank: int, a: int, b: int, c: int
    ) -> bool:
        """Probe R, S, T around (a, b, c); insert the gaps (Algorithm 2).

        Returns True iff (a, b, c) is a triangle.  Constraints are inserted
        in rank space into the specialized lists.
        """
        member = True
        # --- R(A, B): gaps on A and, under a match, on B.
        lo, hi = self.r_index.find_gap((), a)
        if lo != hi:
            self._insert_a_gap(self.r_index, (), lo, hi)
            member = False
        else:
            b_lo, b_hi = self.r_index.find_gap((hi,), b)
            if b_lo != b_hi:
                low = self.b_dict.to_rank(self.r_index.value((hi, b_lo)))
                high = self.b_dict.to_rank(self.r_index.value((hi, b_hi)))
                self._eq_a_list(a_rank).insert(low, high)
                self.counters.interval_ops += 1
                member = False
        # --- T(A, C): gaps on A and, under a match, on C (⟨a, *, gap⟩).
        lo, hi = self.t_index.find_gap((), a)
        if lo != hi:
            self._insert_a_gap(self.t_index, (), lo, hi)
            member = False
        else:
            c_lo, c_hi = self.t_index.find_gap((hi,), c)
            if c_lo != c_hi:
                low = self.c_dict.to_rank(self.t_index.value((hi, c_lo)))
                high = self.c_dict.to_rank(self.t_index.value((hi, c_hi)))
                self._eq_a_star_list(a_rank).insert(low, high)
                self.counters.interval_ops += 1
                member = False
        # --- S(B, C): gaps on B (⟨*, gap, *⟩) and under a match on C
        #     (⟨*, b, gap⟩ -> dyadic leaf insert).
        lo, hi = self.s_index.find_gap((), b)
        if lo != hi:
            low = self.b_dict.to_rank(self.s_index.value((lo,)))
            high = self.b_dict.to_rank(self.s_index.value((hi,)))
            self.i_star_b.insert(low, high)
            self.counters.interval_ops += 1
            member = False
        else:
            c_lo, c_hi = self.s_index.find_gap((hi,), c)
            if c_lo != c_hi:
                low = self.c_dict.to_rank(self.s_index.value((hi, c_lo)))
                high = self.c_dict.to_rank(self.s_index.value((hi, c_hi)))
                self.dyadic.insert_leaf(b_rank, low, high)
                member = False
        return member

    def _insert_a_gap(
        self, index: TrieRelation, prefix: Tuple[int, ...], lo: int, hi: int
    ) -> None:
        """Translate an A-level index gap to rank space and store it."""
        low = self.a_dict.to_rank(index.value(prefix + (lo,)))
        high = self.a_dict.to_rank(index.value(prefix + (hi,)))
        self.i_root.insert(low, high)
        self.counters.interval_ops += 1


def triangle_join(
    r_edges: Sequence[Edge],
    s_edges: Sequence[Edge],
    t_edges: Sequence[Edge],
    counters: Optional[OpCounters] = None,
) -> List[Tuple[int, int, int]]:
    """Enumerate Q△ = R(A,B) ⋈ S(B,C) ⋈ T(A,C) with the dyadic CDS."""
    return TriangleMinesweeper(r_edges, s_edges, t_edges, counters).run()
