"""Triangle query Q△ = R(A,B) ⋈ S(B,C) ⋈ T(A,C) with the dyadic-tree CDS.

Paper Theorem 5.4 / Appendix L: the generic ConstraintTree spends Θ(|C|²)
work on hard triangle instances because it revisits Ω(|C|²) (a, b) pairs.
The specialized CDS keeps, for every *dyadic interval* x of the B domain,
an interval list

    I(*, x)  =  ⋂_{b ∈ x} I(*, =b)        (invariant (7))

of C-gaps that hold simultaneously for every b in x, so a whole dyadic
block of b values can be dismissed in one cached comparison.  Probe search
(Algorithm 10) walks the dyadic tree in pre-order with a per-(a, node)
cache of the last viable C candidate.

Implementation notes (documented deviations, all behaviour-preserving):

* Values are coordinate-compressed into rank space per column pair — only
  dictionary values can be output tuples, and gap endpoints are data
  values, so constraints translate monotonically.
* Algorithm 10 leaves two gaps a literal transcription would trip over:
  (i) when line 9 finds no viable b it loops to i=0 without ruling out
  ``a`` — we insert ⟨(a-1, a+1), *, *⟩ (sound: every b is dead for this a);
  (ii) the pre-order walk can land on a leaf b covered by I(=a) ∪ I(*) —
  we hop to the next sibling instead of returning an inactive probe.
* Output suppression uses the accompanying ``Cache(a, b, c+1)`` call the
  paper prescribes (leaf caches only; bumping internal caches on output
  would be unsound for sibling leaves).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from bisect import bisect_left

from repro.storage.flat_trie import FlatTrieRelation
from repro.storage.interval_list import (
    ENC_POS,
    IntervalList,
    interval_is_empty,
)
from repro.storage.trie import TrieRelation
from repro.util.counters import NullCounters, OpCounters
from repro.util.sentinels import NEG_INF, POS_INF, ExtendedValue

Edge = Tuple[int, int]


class _Dict:
    """A sorted value dictionary with rank translation (one per column)."""

    __slots__ = ("values", "rank_of")

    def __init__(self, values) -> None:
        self.values: List[int] = sorted(set(values))
        self.rank_of: Dict[int, int] = {
            v: i for i, v in enumerate(self.values)
        }

    def __len__(self) -> int:
        return len(self.values)

    def to_rank(self, value: ExtendedValue) -> ExtendedValue:
        """Exact rank of a dictionary value; infinities pass through."""
        if value is NEG_INF or value is POS_INF:
            return value
        return self.rank_of[value]


class DyadicTree:
    """Interval lists I(*, x) for every dyadic B-interval x (App. L.1).

    Storage is one dense heap-numbered array (the tree is complete and
    small: 2^{depth+1} slots; node (level, index) lives at slot
    ``2^level + index``), so the probe walk addresses nodes by a single
    integer — descend is ``heap << 1``, sibling is ``heap ^ 1``, parent
    is ``heap >> 1`` — with no per-visit tuple hashing or level
    bookkeeping.
    """

    def __init__(self, n_leaves: int, counters: OpCounters) -> None:
        self.depth = max(1, (max(n_leaves, 1) - 1).bit_length())
        self.n_leaves = n_leaves
        self.counters = counters
        self._heap: List[Optional[IntervalList]] = [None] * (
            1 << (self.depth + 1)
        )

    def node_list(self, level: int, index: int) -> Optional[IntervalList]:
        return self._heap[(1 << level) + index]

    def _list_for_heap(self, heap: int) -> IntervalList:
        lst = self._heap[heap]
        if lst is None:
            lst = IntervalList()
            self._heap[heap] = lst
        return lst

    def items(self) -> List[Tuple[Tuple[int, int], IntervalList]]:
        """All materialized ((level, index), list) pairs (tests/debug)."""
        out = []
        for heap, lst in enumerate(self._heap):
            if lst is not None:
                level = heap.bit_length() - 1
                out.append(((level, heap - (1 << level)), lst))
        return out

    def insert_leaf(
        self, leaf: int, low: ExtendedValue, high: ExtendedValue
    ) -> None:
        """Insert a C-gap for one b value and restore invariant (7) upward.

        Follows Proposition L.1: only the genuinely new parts float up, and
        a part rises only where the sibling already covers it.
        """
        if interval_is_empty(low, high):
            return
        heap = (1 << self.depth) + leaf
        node = self._list_for_heap(heap)
        if node:
            parts = node.uncovered_runs(low, high)
        else:
            parts = [(low, high)]  # empty node: the whole insert is new
        node.insert(low, high)
        self.counters.interval_ops += 1
        while heap > 1 and parts:
            sibling = self._heap[heap ^ 1]
            parent = self._list_for_heap(heap >> 1)
            lifted: List[Tuple[ExtendedValue, ExtendedValue]] = []
            if sibling is not None:
                for lo, hi in parts:
                    for cov_lo, cov_hi in sibling.covered_runs(lo, hi):
                        lifted.extend(parent.uncovered_runs(cov_lo, cov_hi))
                        parent.insert(cov_lo, cov_hi)
                        self.counters.interval_ops += 1
            parts = lifted
            heap >>= 1

    def check_invariant(self) -> None:
        """Assert I(*, x) = I(*, x0) ∩ I(*, x1) on the materialized tree.

        Used by tests.  Verified pointwise over the integer hull of the
        finite endpoints.
        """
        materialized = self.items()
        points = set()
        for _, lst in materialized:
            for lo, hi in lst.intervals():
                for v in (lo, hi):
                    if v is not NEG_INF and v is not POS_INF:
                        points.add(v)
        probe_points = sorted(points | {p + 1 for p in points} | {-1, 0})
        for (level, index), lst in materialized:
            if level == self.depth:
                continue
            heap = (1 << level) + index
            left = self._heap[2 * heap]
            right = self._heap[2 * heap + 1]
            for v in probe_points:
                parent_covers = lst.covers(v)
                child_covers = (
                    left is not None
                    and right is not None
                    and left.covers(v)
                    and right.covers(v)
                )
                if parent_covers and not child_covers:
                    raise AssertionError(
                        f"I(*,{(level, index)}) covers {v} but children do not"
                    )


def _next_union(
    first: IntervalList,
    second: Optional[IntervalList],
    start: int,
    counters: OpCounters,
) -> ExtendedValue:
    """Smallest v >= start not covered by either list (MERGE-style).

    The alternation (paper MERGE) is inlined over the lists' encoded
    endpoint arrays with per-list galloping cursors: the sought value
    only ascends within one call and neither list mutates, so each Next
    resumes where the previous one stopped instead of re-searching from
    scratch.  Operation tallies are exactly those of the call-per-Next
    formulation.  May return the *encoded* +inf (an int ≥ ``ENC_POS``),
    which every caller treats identically to ``POS_INF`` via its
    upper-bound comparison.
    """
    if second is None:
        counters.interval_ops += 1
        return first.next(start)
    f_lows, f_highs = first._lows, first._highs
    s_lows, s_highs = second._lows, second._highs
    nf, ns = len(f_lows), len(s_lows)
    value = start
    ops = 0
    fi = si = 0  # galloping cursors: list[:cursor] is known < value
    while True:
        ops += 1
        # --- step_one = first.next(value), resuming at cursor fi.
        i = fi
        if i < nf and f_lows[i] < value:
            i += 1  # single-step advance: skip the gallop entirely
        if i < nf and f_lows[i] < value:
            prev = i
            step = 1
            while i + step < nf and f_lows[i + step] < value:
                prev = i + step
                step <<= 1
            top = i + step
            i = bisect_left(f_lows, value, prev + 1, top if top < nf else nf)
        fi = i
        if i:
            high = f_highs[i - 1]
            step_one = high if high > value else value
        else:
            step_one = value
        if step_one >= ENC_POS:
            counters.interval_ops += ops
            return step_one
        ops += 1
        # --- step_two = second.next(step_one), resuming at cursor si.
        i = si
        if i < ns and s_lows[i] < step_one:
            i += 1  # single-step advance: skip the gallop entirely
        if i < ns and s_lows[i] < step_one:
            prev = i
            step = 1
            while i + step < ns and s_lows[i + step] < step_one:
                prev = i + step
                step <<= 1
            top = i + step
            i = bisect_left(
                s_lows, step_one, prev + 1, top if top < ns else ns
            )
        si = i
        if i:
            high = s_highs[i - 1]
            step_two = high if high > step_one else step_one
        else:
            step_two = step_one
        if step_two >= ENC_POS:
            counters.interval_ops += ops
            return step_two
        if step_two == step_one:
            counters.interval_ops += ops
            return step_two
        value = step_two


class TriangleMinesweeper:
    """Algorithm 10: Minesweeper for Q△ in Õ(|C|^{3/2} + Z).

    Parameters are edge lists: R ⊆ A×B, S ⊆ B×C, T ⊆ A×C.  ``run`` returns
    the triangles (a, b, c) in GAO order (A, B, C).
    """

    def __init__(
        self,
        r_edges: Sequence[Edge],
        s_edges: Sequence[Edge],
        t_edges: Sequence[Edge],
        counters: Optional[OpCounters] = None,
        backend: str = "auto",
    ) -> None:
        self.counters = counters if counters is not None else OpCounters()
        self._counting = self.counters.enabled
        if backend in ("auto", "flat"):
            make_index = FlatTrieRelation
        elif backend in ("trie", "btree"):
            make_index = TrieRelation
        else:
            raise ValueError(f"unknown backend {backend!r}")
        self.r_index = make_index(r_edges, arity=2, counters=self.counters)
        self.s_index = make_index(s_edges, arity=2, counters=self.counters)
        self.t_index = make_index(t_edges, arity=2, counters=self.counters)
        self._flat = make_index is FlatTrieRelation
        r_rows = self.r_index.tuples()
        s_rows = self.s_index.tuples()
        t_rows = self.t_index.tuples()
        self.a_dict = _Dict(
            [a for a, _ in r_rows] + [a for a, _ in t_rows]
        )
        self.b_dict = _Dict(
            [b for _, b in r_rows] + [b for b, _ in s_rows]
        )
        self.c_dict = _Dict(
            [c for _, c in s_rows] + [c for _, c in t_rows]
        )
        # Static domain sizes / rank maps, hoisted off the probe loop.
        self._n_a = len(self.a_dict)
        self._n_b = len(self.b_dict)
        self._n_c = len(self.c_dict)
        self._a_rank_of = self.a_dict.rank_of
        self._b_rank_of = self.b_dict.rank_of
        self._c_rank_of = self.c_dict.rank_of
        self._init_cds()

    def _init_cds(self) -> None:
        """Build the specialized CDS state (overridden by the arena twin)."""
        # CDS state, all in rank space.
        self.i_root = IntervalList()  # gaps on A
        self.i_star_b = IntervalList()  # ⟨*, (b1,b2), *⟩
        self.i_eq_a: Dict[int, IntervalList] = {}  # ⟨a, (b1,b2), *⟩
        self.i_eq_a_star: Dict[int, IntervalList] = {}  # ⟨a, *, (c1,c2)⟩
        self.dyadic = DyadicTree(len(self.b_dict), self.counters)
        # Padding leaves (the B domain rounded up to a power of two) carry
        # no real b value; mark them fully covered so invariant (7) can
        # propagate real coverage all the way to the root.
        for leaf in range(len(self.b_dict), 1 << self.dyadic.depth):
            self.dyadic.insert_leaf(leaf, NEG_INF, POS_INF)
        # (a, dyadic node) -> last viable C candidate at that node.  Keys
        # are packed ints — (a << shift) | heap_id with heap_id =
        # 2^level + index — so the probe walk never allocates key tuples.
        self._cache: Dict[int, int] = {}
        self._key_shift = self.dyadic.depth + 1
        # The CDS root lists live for the engine's lifetime and mutate in
        # place; their accessors are prebound for the outer probe loop.
        self._i_root_next = self.i_root.next
        self._i_star_b_next = self.i_star_b.next

    # ------------------------------------------------------------------
    # Cache
    # ------------------------------------------------------------------

    def _cache_key(self, a: int, level: int, index: int) -> int:
        return (a << self._key_shift) | ((1 << level) + index)

    def _get_cache(self, a: int, level: int, index: int) -> int:
        value = self._cache.get(self._cache_key(a, level, index))
        if value is None:  # stored candidates are always >= 0
            self.counters.cache_misses += 1
            return -1
        self.counters.cache_hits += 1
        return value

    def _set_cache(self, a: int, level: int, index: int, value: int) -> None:
        self._cache[self._cache_key(a, level, index)] = value

    # ------------------------------------------------------------------
    # Constraint insertion helpers (rank space)
    # ------------------------------------------------------------------

    def _eq_a_list(self, a: int) -> IntervalList:
        lst = self.i_eq_a.get(a)
        if lst is None:
            lst = IntervalList()
            self.i_eq_a[a] = lst
        return lst

    def _eq_a_star_list(self, a: int) -> IntervalList:
        lst = self.i_eq_a_star.get(a)
        if lst is None:
            lst = IntervalList()
            self.i_eq_a_star[a] = lst
        return lst

    # ------------------------------------------------------------------
    # Probe search (Algorithm 10)
    # ------------------------------------------------------------------

    def get_probe_point(self) -> Optional[Tuple[int, int, int]]:
        """Return an active (a, b, c) in rank space, or None."""
        counters = self.counters
        n_a, n_b, n_c = self._n_a, self._n_b, self._n_c
        if not n_a or not n_b or not n_c:
            return None
        i_eq_a_get = self.i_eq_a.get
        while True:
            counters.interval_ops += 1
            a = self._i_root_next(0)  # smallest free a >= 0
            if a is POS_INF or a >= n_a:
                return None
            eq_a = i_eq_a_get(a)
            if eq_a is None:
                # Single-list union (what _next_union degenerates to).
                counters.interval_ops += 1
                b_probe = self._i_star_b_next(0)
            else:
                b_probe = _next_union(self.i_star_b, eq_a, 0, counters)
            if b_probe is POS_INF or b_probe >= n_b:
                # No b is viable for this a: rule the a out (sound; see
                # module docstring) and retry.
                self.i_root.insert(a - 1, a + 1)
                continue
            eq_a_star = self.i_eq_a_star.get(a)
            if eq_a_star is not None:
                counters.interval_ops += 1
                first_free_c = eq_a_star.next(0)
                if first_free_c is POS_INF or first_free_c >= n_c:
                    self.i_root.insert(a - 1, a + 1)
                    continue
            found = self._descend(a, n_b, n_c)
            if found is None:
                # Dyadic walk exhausted every b for this a.
                self.i_root.insert(a - 1, a + 1)
                continue
            return found

    def _descend(
        self, a: int, n_b: int, n_c: int
    ) -> Optional[Tuple[int, int, int]]:
        """Walk the dyadic tree in pre-order; return (a, b, c) or None.

        The loop body is the engine's hottest path: the per-(a, node)
        cache, the dyadic node lists, and the sibling hop are all inlined
        on locals (operation counts are unchanged; cache-hit/miss tallies
        are skipped entirely under disabled counters).
        """
        counters = self.counters
        counting = counters.enabled
        eq_a_star = self.i_eq_a_star.get(a)
        eq_a = self.i_eq_a.get(a)
        # The covers() checks are inlined on the lists' encoded arrays
        # (i_star_b is never mutated inside the walk; eq_a's lists mutate
        # in place, so the bindings stay live — and matching the original
        # formulation, an eq_a list *created* mid-walk is not consulted).
        star_lows, star_highs = self.i_star_b._lows, self.i_star_b._highs
        if eq_a is not None:
            eq_lows, eq_highs = eq_a._lows, eq_a._highs
        else:
            eq_lows = eq_highs = None
        depth = self.dyadic.depth
        cache = self._cache
        cache_get = cache.get
        heap_lists = self.dyadic._heap
        leaf_base = 1 << depth
        if eq_a_star is not None:
            eq_a_star_next = eq_a_star.next
            # eq_a_star is not mutated inside the walk; its endpoint
            # arrays are hoisted for the inlined union loop below.
            es_lows, es_highs = eq_a_star._lows, eq_a_star._highs
            n_es = len(es_lows)
        else:
            eq_a_star_next = None
        a_key = a << self._key_shift
        heap = 1  # root of the heap-numbered dyadic tree
        while True:
            at_leaf = heap >= leaf_base
            if at_leaf:
                b_leaf = heap - leaf_base
                if b_leaf >= n_b:
                    covered = True
                else:
                    covered = False
                    if eq_lows is not None:
                        i = bisect_left(eq_lows, b_leaf)
                        covered = bool(i) and eq_highs[i - 1] > b_leaf
                    if not covered:
                        i = bisect_left(star_lows, b_leaf)
                        covered = bool(i) and star_highs[i - 1] > b_leaf
                if covered:
                    # Inactive leaf (padding or covered b): hop to the
                    # sibling (flip the last 0 bit, drop the tail).
                    while heap > 1:
                        if not heap & 1:
                            heap += 1
                            break
                        heap >>= 1
                    else:
                        return None
                    continue
            key = a_key | heap
            z = cache_get(key)
            if z is None:
                z = -1
                if counting:
                    counters.cache_misses += 1
            elif counting:
                counters.cache_hits += 1
            node_list = heap_lists[heap]
            start = z if z > 0 else 0
            if node_list is None:
                if eq_a_star_next is None:
                    c: ExtendedValue = start
                else:
                    # Single-list union (what _next_union degenerates to).
                    c = eq_a_star_next(start)
                    counters.interval_ops += 1
            elif eq_a_star is None:
                c = node_list.next(start)
                counters.interval_ops += 1
            else:
                # _next_union(eq_a_star, node_list, start) inlined on the
                # hottest path (see _next_union for the reference form);
                # identical alternation, identical operation tallies.
                nl_lows, nl_highs = node_list._lows, node_list._highs
                n_nl = len(nl_lows)
                value = start
                ops = 0
                fi = si = 0
                while True:
                    ops += 1
                    i = fi
                    if i < n_es and es_lows[i] < value:
                        i += 1  # single-step advance: skip the gallop entirely
                    if i < n_es and es_lows[i] < value:
                        prev = i
                        step = 1
                        while i + step < n_es and es_lows[i + step] < value:
                            prev = i + step
                            step <<= 1
                        top = i + step
                        i = bisect_left(
                            es_lows, value, prev + 1,
                            top if top < n_es else n_es,
                        )
                    fi = i
                    if i:
                        high = es_highs[i - 1]
                        step_one = high if high > value else value
                    else:
                        step_one = value
                    if step_one >= ENC_POS:
                        c = step_one
                        break
                    ops += 1
                    i = si
                    if i < n_nl and nl_lows[i] < step_one:
                        i += 1  # single-step advance: skip the gallop entirely
                    if i < n_nl and nl_lows[i] < step_one:
                        prev = i
                        step = 1
                        while (
                            i + step < n_nl and nl_lows[i + step] < step_one
                        ):
                            prev = i + step
                            step <<= 1
                        top = i + step
                        i = bisect_left(
                            nl_lows, step_one, prev + 1,
                            top if top < n_nl else n_nl,
                        )
                    si = i
                    if i:
                        high = nl_highs[i - 1]
                        step_two = high if high > step_one else step_one
                    else:
                        step_two = step_one
                    if step_two >= ENC_POS or step_two == step_one:
                        c = step_two
                        break
                    value = step_two
                counters.interval_ops += ops
            if c is not POS_INF and c < n_c:
                cache[key] = c
                if at_leaf:
                    return (a, heap - leaf_base, c)  # type: ignore[return-value]
                heap <<= 1
                continue
            # Every c is dead for all b in this dyadic block: record the
            # block as a B-gap for this a and hop to the next sibling.
            cache[key] = n_c
            level = heap.bit_length() - 1
            block = 1 << (depth - level)
            index = heap - (1 << level)
            lo, hi = index * block - 1, (index + 1) * block
            self._eq_a_list(a).insert(lo, hi)
            counters.interval_ops += 1
            while heap > 1:
                if not heap & 1:
                    heap += 1
                    break
                heap >>= 1
            else:
                return None

    # ------------------------------------------------------------------
    # Outer loop
    # ------------------------------------------------------------------

    def run(self, max_probes: Optional[int] = None) -> List[Tuple[int, int, int]]:
        """Enumerate all triangles (a, b, c)."""
        counters = self.counters
        output: List[Tuple[int, int, int]] = []
        a_values = self.a_dict.values
        b_values = self.b_dict.values
        c_values = self.c_dict.values
        explore = self._explore
        n = (
            len(self.r_index)
            + len(self.s_index)
            + len(self.t_index)
        )
        budget = max_probes if max_probes is not None else 1000 + 200 * (n + 1)
        while True:
            probe = self.get_probe_point()
            if probe is None:
                break
            counters.probes += 1
            if counters.probes - counters.output_tuples > budget:
                raise RuntimeError(
                    f"triangle probe budget exhausted at {probe}"
                )
            a_rank, b_rank, c_rank = probe
            a = a_values[a_rank]
            b = b_values[b_rank]
            c = c_values[c_rank]
            is_member = explore(a_rank, b_rank, c_rank, a, b, c)
            if is_member:
                output.append((a, b, c))
                counters.output_tuples += 1
                self._set_cache(
                    a_rank, self.dyadic.depth, b_rank, c_rank + 1
                )
        return sorted(output)

    def _explore(
        self, a_rank: int, b_rank: int, c_rank: int, a: int, b: int, c: int
    ) -> bool:
        """Probe R, S, T around (a, b, c); insert the gaps (Algorithm 2).

        Returns True iff (a, b, c) is a triangle.  Constraints are inserted
        in rank space into the specialized lists.  Index access goes
        through node handles (``gap_at`` / ``value_at`` / ``child_at``) so
        neither backend re-walks its trie from the root per operation;
        the flat backend gets a fully inlined CSR-array variant.
        """
        if self._flat:
            return self._explore_flat(a_rank, b_rank, c_rank, a, b, c)
        member = True
        # --- R(A, B): gaps on A and, under a match, on B.
        r_root = self.r_index.root_handle()
        lo, hi = self.r_index.gap_at(r_root, a)
        if lo != hi:
            self._insert_a_gap(self.r_index, r_root, lo, hi)
            member = False
        else:
            node = self.r_index.child_at(r_root, hi)
            b_lo, b_hi = self.r_index.gap_at(node, b)
            if b_lo != b_hi:
                low = self.b_dict.to_rank(self.r_index.value_at(node, b_lo))
                high = self.b_dict.to_rank(self.r_index.value_at(node, b_hi))
                self._eq_a_list(a_rank).insert(low, high)
                self.counters.interval_ops += 1
                member = False
        # --- T(A, C): gaps on A and, under a match, on C (⟨a, *, gap⟩).
        t_root = self.t_index.root_handle()
        lo, hi = self.t_index.gap_at(t_root, a)
        if lo != hi:
            self._insert_a_gap(self.t_index, t_root, lo, hi)
            member = False
        else:
            node = self.t_index.child_at(t_root, hi)
            c_lo, c_hi = self.t_index.gap_at(node, c)
            if c_lo != c_hi:
                low = self.c_dict.to_rank(self.t_index.value_at(node, c_lo))
                high = self.c_dict.to_rank(self.t_index.value_at(node, c_hi))
                self._eq_a_star_list(a_rank).insert(low, high)
                self.counters.interval_ops += 1
                member = False
        # --- S(B, C): gaps on B (⟨*, gap, *⟩) and under a match on C
        #     (⟨*, b, gap⟩ -> dyadic leaf insert).
        s_root = self.s_index.root_handle()
        lo, hi = self.s_index.gap_at(s_root, b)
        if lo != hi:
            low = self.b_dict.to_rank(self.s_index.value_at(s_root, lo))
            high = self.b_dict.to_rank(self.s_index.value_at(s_root, hi))
            self.i_star_b.insert(low, high)
            self.counters.interval_ops += 1
            member = False
        else:
            node = self.s_index.child_at(s_root, hi)
            c_lo, c_hi = self.s_index.gap_at(node, c)
            if c_lo != c_hi:
                low = self.c_dict.to_rank(self.s_index.value_at(node, c_lo))
                high = self.c_dict.to_rank(self.s_index.value_at(node, c_hi))
                self.dyadic.insert_leaf(b_rank, low, high)
                member = False
        return member

    def _insert_a_gap(self, index, root_handle, lo: int, hi: int) -> None:
        """Translate an A-level index gap to rank space and store it."""
        low = self.a_dict.to_rank(index.value_at(root_handle, lo))
        high = self.a_dict.to_rank(index.value_at(root_handle, hi))
        self.i_root.insert(low, high)
        self.counters.interval_ops += 1

    def _explore_flat(
        self, a_rank: int, b_rank: int, c_rank: int, a: int, b: int, c: int
    ) -> bool:
        """The _explore probe sequence inlined over the CSR arrays.

        Behaviour- and count-identical to the handle formulation: one
        FindGap per relation at the root, one more under a root match,
        and the same constraint inserts in the same order.
        """
        counters = self.counters
        counting = self._counting
        a_rank_of = self._a_rank_of
        b_rank_of = self._b_rank_of
        c_rank_of = self._c_rank_of
        member = True
        # --- R(A, B): gaps on A and, under a match, on B.
        vals0 = self.r_index._vals[0]
        vals1 = self.r_index._vals[1]
        off1 = self.r_index._offs[1]
        if counting:
            counters.findgap += 1
        n = len(vals0)
        i = bisect_left(vals0, a)
        if i < n and vals0[i] == a:
            span_lo, span_hi = off1[i], off1[i + 1]
            if counting:
                counters.findgap += 1
            j = bisect_left(vals1, b, span_lo, span_hi)
            if not (j < span_hi and vals1[j] == b):
                low = b_rank_of[vals1[j - 1]] if j > span_lo else NEG_INF
                high = b_rank_of[vals1[j]] if j < span_hi else POS_INF
                self._eq_a_list(a_rank).insert(low, high)
                counters.interval_ops += 1
                member = False
        else:
            low = a_rank_of[vals0[i - 1]] if i > 0 else NEG_INF
            high = a_rank_of[vals0[i]] if i < n else POS_INF
            self.i_root.insert(low, high)
            counters.interval_ops += 1
            member = False
        # --- T(A, C): gaps on A and, under a match, on C (⟨a, *, gap⟩).
        vals0 = self.t_index._vals[0]
        vals1 = self.t_index._vals[1]
        off1 = self.t_index._offs[1]
        if counting:
            counters.findgap += 1
        n = len(vals0)
        i = bisect_left(vals0, a)
        if i < n and vals0[i] == a:
            span_lo, span_hi = off1[i], off1[i + 1]
            if counting:
                counters.findgap += 1
            j = bisect_left(vals1, c, span_lo, span_hi)
            if not (j < span_hi and vals1[j] == c):
                low = c_rank_of[vals1[j - 1]] if j > span_lo else NEG_INF
                high = c_rank_of[vals1[j]] if j < span_hi else POS_INF
                self._eq_a_star_list(a_rank).insert(low, high)
                counters.interval_ops += 1
                member = False
        else:
            low = a_rank_of[vals0[i - 1]] if i > 0 else NEG_INF
            high = a_rank_of[vals0[i]] if i < n else POS_INF
            self.i_root.insert(low, high)
            counters.interval_ops += 1
            member = False
        # --- S(B, C): gaps on B (⟨*, gap, *⟩) and under a match on C
        #     (⟨*, b, gap⟩ -> dyadic leaf insert).
        vals0 = self.s_index._vals[0]
        vals1 = self.s_index._vals[1]
        off1 = self.s_index._offs[1]
        if counting:
            counters.findgap += 1
        n = len(vals0)
        i = bisect_left(vals0, b)
        if i < n and vals0[i] == b:
            span_lo, span_hi = off1[i], off1[i + 1]
            if counting:
                counters.findgap += 1
            j = bisect_left(vals1, c, span_lo, span_hi)
            if not (j < span_hi and vals1[j] == c):
                low = c_rank_of[vals1[j - 1]] if j > span_lo else NEG_INF
                high = c_rank_of[vals1[j]] if j < span_hi else POS_INF
                self.dyadic.insert_leaf(b_rank, low, high)
                member = False
        else:
            low = b_rank_of[vals0[i - 1]] if i > 0 else NEG_INF
            high = b_rank_of[vals0[i]] if i < n else POS_INF
            self.i_star_b.insert(low, high)
            counters.interval_ops += 1
            member = False
        return member


def triangle_join(
    r_edges: Sequence[Edge],
    s_edges: Sequence[Edge],
    t_edges: Sequence[Edge],
    counters: Optional[OpCounters] = None,
    backend: str = "auto",
    cds_backend: Optional[str] = None,
) -> List[Tuple[int, int, int]]:
    """Enumerate Q△ = R(A,B) ⋈ S(B,C) ⋈ T(A,C) with the dyadic CDS.

    With no ``counters`` the engine runs counting-free (the tallies
    would be unreachable through this interface anyway); pass an
    :class:`OpCounters` to collect the Section-5.2 numbers.

    ``cds_backend`` picks the specialized CDS's storage: ``"arena"``
    (one pooled interval store, the default) or ``"pointer"`` (per-node
    ``IntervalList`` objects).  Rows and operation counts are invariant
    in the knob.  The arena variant requires the flat relation backend;
    ``trie`` / ``btree`` ablations always run the pointer CDS.
    """
    from repro.core.cds_arena import resolve_cds_backend

    if counters is None:
        counters = NullCounters()
    resolved = resolve_cds_backend(cds_backend)
    if resolved == "arena" and backend in ("auto", "flat"):
        from repro.core.triangle_arena import ArenaTriangleMinesweeper

        engine: TriangleMinesweeper = ArenaTriangleMinesweeper(
            r_edges, s_edges, t_edges, counters, backend=backend
        )
    else:
        engine = TriangleMinesweeper(
            r_edges, s_edges, t_edges, counters, backend=backend
        )
    return engine.run()
