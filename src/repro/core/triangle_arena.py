"""Arena backend for the specialized triangle CDS (paper Appendix L).

:class:`ArenaTriangleMinesweeper` is :class:`~repro.core.triangle.
TriangleMinesweeper` with every CDS interval list — the A-gap root list,
the ⟨*, (b1,b2), *⟩ list, the per-``a`` B- and C-lists, and the whole
heap-numbered dyadic tree — stored as slices of one shared
:class:`~repro.storage.interval_pool.IntervalPool` instead of per-node
``IntervalList`` objects.  Endpoints stay in the :mod:`interval_list`
int encoding end to end, so the invariant-(7) float-up
(``insert_leaf``) no longer decodes and re-encodes every part it lifts,
and the probe walk's covers/Next loops index two flat buffers.

Counting follows the ``OpCounters`` / ``NullCounters`` protocol: the
``enabled`` flag is read once and all tallying is skipped under
``NullCounters`` (the pointer engine pays those attribute bumps even
when nobody reads them).  Under an enabled counter the tallies are
placed exactly where the pointer engine places them, so probes, cache
hits/misses, interval ops, and rows are identical — asserted by the
backend-parity suite.

Only the flat (CSR) relation backend is supported; ``triangle_join``
falls back to the pointer CDS for the ``trie`` / ``btree`` ablations.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Tuple

from repro.core.triangle import TriangleMinesweeper
from repro.storage.interval_list import ENC_NEG, ENC_POS
from repro.storage.interval_pool import IntervalPool


class _PooledDyadic:
    """Heap-numbered dyadic tree as lazily-allocated pool handles."""

    __slots__ = ("depth", "n_leaves", "handles")

    def __init__(self, n_leaves: int) -> None:
        self.depth = max(1, (max(n_leaves, 1) - 1).bit_length())
        self.n_leaves = n_leaves
        self.handles: List[int] = [-1] * (1 << (self.depth + 1))


class ArenaTriangleMinesweeper(TriangleMinesweeper):
    """Algorithm 10 over the pooled CDS; see the module docstring."""

    def _init_cds(self) -> None:
        if not self._flat:
            raise ValueError(
                "the arena triangle CDS requires the flat relation backend; "
                "use cds_backend='pointer' with trie/btree indexes"
            )
        pool = IntervalPool()
        self.pool = pool
        self.h_root = pool.new()  # gaps on A
        self.h_star_b = pool.new()  # ⟨*, (b1,b2), *⟩
        self.h_eq_a: Dict[int, int] = {}  # ⟨a, (b1,b2), *⟩
        self.h_eq_a_star: Dict[int, int] = {}  # ⟨a, *, (c1,c2)⟩
        self.dyadic = _PooledDyadic(len(self.b_dict))
        # Padding leaves (the B domain rounded up to a power of two) carry
        # no real b value; mark them fully covered so invariant (7) can
        # propagate real coverage all the way to the root.
        for leaf in range(len(self.b_dict), 1 << self.dyadic.depth):
            self._insert_leaf(leaf, ENC_NEG, ENC_POS)
        self._cache: Dict[int, int] = {}
        self._key_shift = self.dyadic.depth + 1

    # ------------------------------------------------------------------
    # CDS helpers (pool handles in place of IntervalList objects)
    # ------------------------------------------------------------------

    def _eq_a_handle(self, a: int) -> int:
        h = self.h_eq_a.get(a)
        if h is None:
            h = self.pool.new()
            self.h_eq_a[a] = h
        return h

    def _eq_a_star_handle(self, a: int) -> int:
        h = self.h_eq_a_star.get(a)
        if h is None:
            h = self.pool.new()
            self.h_eq_a_star[a] = h
        return h

    def _dyadic_handle(self, heap: int) -> int:
        h = self.dyadic.handles[heap]
        if h < 0:
            h = self.pool.new()
            self.dyadic.handles[heap] = h
        return h

    def _insert_leaf(self, leaf: int, lo: int, hi: int) -> None:
        """Insert a C-gap for one b and restore invariant (7) upward.

        The pointer :meth:`DyadicTree.insert_leaf` with encoded
        endpoints end to end and counting-gated tallies; the part
        decomposition (uncovered runs, sibling-covered lifts) is
        identical, so interval-op counts match under enabled counters.
        """
        if hi - lo <= 1:
            return
        pool = self.pool
        counting = self._counting
        counters = self.counters
        heap = (1 << self.dyadic.depth) + leaf
        handles = self.dyadic.handles
        h = self._dyadic_handle(heap)
        if pool.length[h]:
            parts = pool.uncovered_runs_encoded(h, lo, hi)
        else:
            parts = [(lo, hi)]  # empty node: the whole insert is new
        pool.insert_encoded(h, lo, hi)
        if counting:
            counters.interval_ops += 1
        while heap > 1 and parts:
            sibling = handles[heap ^ 1]
            parent = self._dyadic_handle(heap >> 1)
            lifted: List[Tuple[int, int]] = []
            if sibling >= 0:
                for part_lo, part_hi in parts:
                    for cov_lo, cov_hi in pool.covered_runs_encoded(
                        sibling, part_lo, part_hi
                    ):
                        lifted.extend(
                            pool.uncovered_runs_encoded(parent, cov_lo, cov_hi)
                        )
                        pool.insert_encoded(parent, cov_lo, cov_hi)
                        if counting:
                            counters.interval_ops += 1
            parts = lifted
            heap >>= 1

    # ------------------------------------------------------------------
    # Probe search (Algorithm 10 over pool slices)
    # ------------------------------------------------------------------

    def get_probe_point(self) -> Optional[Tuple[int, int, int]]:
        """Return an active (a, b, c) in rank space, or None."""
        counters = self.counters
        counting = self._counting
        n_a, n_b, n_c = self._n_a, self._n_b, self._n_c
        if not n_a or not n_b or not n_c:
            return None
        pool = self.pool
        plows = pool.lows
        phighs = pool.highs
        pstart = pool.start
        plength = pool.length
        h_root = self.h_root
        h_star = self.h_star_b
        eq_a_get = self.h_eq_a.get
        eq_a_star_get = self.h_eq_a_star.get
        while True:
            # --- a = i_root.next(0) (front/gallop inline).
            if counting:
                counters.interval_ops += 1
            m = plength[h_root]
            a = 0
            if m:
                s = pstart[h_root]
                e = s + m
                i = s
                if plows[i] < 0:
                    i += 1
                if i < e and plows[i] < 0:
                    prev = i
                    step = 1
                    while i + step < e and plows[i + step] < 0:
                        prev = i + step
                        step <<= 1
                    top = i + step
                    i = bisect_left(plows, 0, prev + 1, top if top < e else e)
                if i > s:
                    high = phighs[i - 1]
                    if high > 0:
                        a = high
            if a >= n_a:  # encoded +inf is >= any domain size
                return None
            h_eq = eq_a_get(a)
            # --- b_probe = Next of (star ∪ eq_a) from 0.
            if h_eq is None:
                if counting:
                    counters.interval_ops += 1
                b_probe = pool.next_encoded(h_star, 0)
            else:
                # _next_union(star, eq_a, 0) inlined, same op arithmetic.
                f_s = pstart[h_star]
                f_e = f_s + plength[h_star]
                s_s = pstart[h_eq]
                s_e = s_s + plength[h_eq]
                fi = f_s
                si = s_s
                value = 0
                ops = 0
                while True:
                    ops += 1
                    i = fi
                    if i < f_e and plows[i] < value:
                        i += 1
                    if i < f_e and plows[i] < value:
                        prev = i
                        step = 1
                        while i + step < f_e and plows[i + step] < value:
                            prev = i + step
                            step <<= 1
                        top = i + step
                        i = bisect_left(
                            plows, value, prev + 1, top if top < f_e else f_e
                        )
                    fi = i
                    if i > f_s:
                        high = phighs[i - 1]
                        step_one = high if high > value else value
                    else:
                        step_one = value
                    if step_one >= ENC_POS:
                        b_probe = step_one
                        break
                    ops += 1
                    i = si
                    if i < s_e and plows[i] < step_one:
                        i += 1
                    if i < s_e and plows[i] < step_one:
                        prev = i
                        step = 1
                        while i + step < s_e and plows[i + step] < step_one:
                            prev = i + step
                            step <<= 1
                        top = i + step
                        i = bisect_left(
                            plows, step_one, prev + 1,
                            top if top < s_e else s_e,
                        )
                    si = i
                    if i > s_s:
                        high = phighs[i - 1]
                        step_two = high if high > step_one else step_one
                    else:
                        step_two = step_one
                    if step_two >= ENC_POS or step_two == step_one:
                        b_probe = step_two
                        break
                    value = step_two
                if counting:
                    counters.interval_ops += ops
            if b_probe >= n_b:
                # No b is viable for this a: rule the a out (sound; see
                # the pointer module docstring) and retry.
                pool.insert_encoded(h_root, a - 1, a + 1)
                continue
            h_eq_star = eq_a_star_get(a)
            if h_eq_star is not None:
                if counting:
                    counters.interval_ops += 1
                first_free_c = pool.next_encoded(h_eq_star, 0)
                if first_free_c >= n_c:
                    pool.insert_encoded(h_root, a - 1, a + 1)
                    continue
            found = self._descend(a, n_b, n_c)
            if found is None:
                # Dyadic walk exhausted every b for this a.
                pool.insert_encoded(h_root, a - 1, a + 1)
                continue
            return found

    def _descend(
        self, a: int, n_b: int, n_c: int
    ) -> Optional[Tuple[int, int, int]]:
        """Pre-order dyadic walk; the pointer `_descend` over pool slices.

        Slice bounds of the star and ⟨a,*,C⟩ lists are hoisted (neither
        mutates inside the walk); the ⟨a,B⟩ list's bounds are re-read
        after each dead-block insert (its slab can relocate).  Matching
        the pointer formulation, an ⟨a,B⟩ list *created* mid-walk is not
        consulted.
        """
        counters = self.counters
        counting = self._counting
        pool = self.pool
        plows = pool.lows
        phighs = pool.highs
        pstart = pool.start
        plength = pool.length
        h_eq_star = self.h_eq_a_star.get(a)
        h_eq = self.h_eq_a.get(a)
        s_s = pstart[self.h_star_b]
        s_e = s_s + plength[self.h_star_b]
        if h_eq is not None:
            eq_s = pstart[h_eq]
            eq_e = eq_s + plength[h_eq]
        else:
            eq_s = eq_e = 0
        if h_eq_star is not None:
            es_s = pstart[h_eq_star]
            es_e = es_s + plength[h_eq_star]
        depth = self.dyadic.depth
        cache = self._cache
        cache_get = cache.get
        handles = self.dyadic.handles
        leaf_base = 1 << depth
        a_key = a << self._key_shift
        heap = 1  # root of the heap-numbered dyadic tree
        while True:
            at_leaf = heap >= leaf_base
            if at_leaf:
                b_leaf = heap - leaf_base
                if b_leaf >= n_b:
                    covered = True
                else:
                    covered = False
                    if h_eq is not None and eq_e > eq_s:
                        i = bisect_left(plows, b_leaf, eq_s, eq_e)
                        covered = i > eq_s and phighs[i - 1] > b_leaf
                    if not covered and s_e > s_s:
                        i = bisect_left(plows, b_leaf, s_s, s_e)
                        covered = i > s_s and phighs[i - 1] > b_leaf
                if covered:
                    # Inactive leaf (padding or covered b): hop to the
                    # sibling (flip the last 0 bit, drop the tail).
                    while heap > 1:
                        if not heap & 1:
                            heap += 1
                            break
                        heap >>= 1
                    else:
                        return None
                    continue
            key = a_key | heap
            z = cache_get(key)
            if z is None:
                z = -1
                if counting:
                    counters.cache_misses += 1
            elif counting:
                counters.cache_hits += 1
            node_h = handles[heap]
            start = z if z > 0 else 0
            if node_h < 0:
                # Never-materialized node (the pointer walk's None).  A
                # *materialized but empty* handle — the float-up can
                # allocate a parent it then lifts nothing into — takes
                # the list branches below, exactly like the pointer
                # engine's empty IntervalList, so tallies agree.
                if h_eq_star is None:
                    c = start
                else:
                    # Single-list union (what _next_union degenerates to).
                    if counting:
                        counters.interval_ops += 1
                    c = pool.next_encoded(h_eq_star, start)
            elif h_eq_star is None:
                if counting:
                    counters.interval_ops += 1
                c = pool.next_encoded(node_h, start)
            else:
                # _next_union(eq_a_star, node_list, start) inlined on the
                # hottest path; identical alternation and op tallies.
                nl_s = pstart[node_h]
                nl_e = nl_s + plength[node_h]
                value = start
                ops = 0
                fi = es_s
                si = nl_s
                while True:
                    ops += 1
                    i = fi
                    if i < es_e and plows[i] < value:
                        i += 1
                    if i < es_e and plows[i] < value:
                        prev = i
                        step = 1
                        while i + step < es_e and plows[i + step] < value:
                            prev = i + step
                            step <<= 1
                        top = i + step
                        i = bisect_left(
                            plows, value, prev + 1,
                            top if top < es_e else es_e,
                        )
                    fi = i
                    if i > es_s:
                        high = phighs[i - 1]
                        step_one = high if high > value else value
                    else:
                        step_one = value
                    if step_one >= ENC_POS:
                        c = step_one
                        break
                    ops += 1
                    i = si
                    if i < nl_e and plows[i] < step_one:
                        i += 1
                    if i < nl_e and plows[i] < step_one:
                        prev = i
                        step = 1
                        while i + step < nl_e and plows[i + step] < step_one:
                            prev = i + step
                            step <<= 1
                        top = i + step
                        i = bisect_left(
                            plows, step_one, prev + 1,
                            top if top < nl_e else nl_e,
                        )
                    si = i
                    if i > nl_s:
                        high = phighs[i - 1]
                        step_two = high if high > step_one else step_one
                    else:
                        step_two = step_one
                    if step_two >= ENC_POS or step_two == step_one:
                        c = step_two
                        break
                    value = step_two
                if counting:
                    counters.interval_ops += ops
            if c < n_c:
                cache[key] = c
                if at_leaf:
                    return (a, heap - leaf_base, c)
                heap <<= 1
                continue
            # Every c is dead for all b in this dyadic block: record the
            # block as a B-gap for this a and hop to the next sibling.
            cache[key] = n_c
            level = heap.bit_length() - 1
            block = 1 << (depth - level)
            index = heap - (1 << level)
            lo, hi = index * block - 1, (index + 1) * block
            if h_eq is None:
                h_eq = self._eq_a_handle(a)
                # Matching the pointer walk: a list created mid-walk is
                # not consulted for leaf cover checks (bounds stay 0,0).
                self.pool.insert_encoded(h_eq, lo, hi)
            else:
                self.pool.insert_encoded(h_eq, lo, hi)
                eq_s = pstart[h_eq]
                eq_e = eq_s + plength[h_eq]
            if counting:
                counters.interval_ops += 1
            while heap > 1:
                if not heap & 1:
                    heap += 1
                    break
                heap >>= 1
            else:
                return None

    # ------------------------------------------------------------------
    # Exploration (flat CSR arrays -> pool inserts, encoded rank space)
    # ------------------------------------------------------------------

    def _explore(
        self, a_rank: int, b_rank: int, c_rank: int, a: int, b: int, c: int
    ) -> bool:
        return self._explore_flat(a_rank, b_rank, c_rank, a, b, c)

    def _explore_flat(
        self, a_rank: int, b_rank: int, c_rank: int, a: int, b: int, c: int
    ) -> bool:
        """The pointer `_explore_flat` with pool-handle constraint inserts."""
        counters = self.counters
        counting = self._counting
        pool = self.pool
        a_rank_of = self._a_rank_of
        b_rank_of = self._b_rank_of
        c_rank_of = self._c_rank_of
        member = True
        # --- R(A, B): gaps on A and, under a match, on B.
        vals0 = self.r_index._vals[0]
        vals1 = self.r_index._vals[1]
        off1 = self.r_index._offs[1]
        if counting:
            counters.findgap += 1
        n = len(vals0)
        i = bisect_left(vals0, a)
        if i < n and vals0[i] == a:
            span_lo, span_hi = off1[i], off1[i + 1]
            if counting:
                counters.findgap += 1
            j = bisect_left(vals1, b, span_lo, span_hi)
            if not (j < span_hi and vals1[j] == b):
                low = b_rank_of[vals1[j - 1]] if j > span_lo else ENC_NEG
                high = b_rank_of[vals1[j]] if j < span_hi else ENC_POS
                pool.insert_encoded(self._eq_a_handle(a_rank), low, high)
                if counting:
                    counters.interval_ops += 1
                member = False
        else:
            low = a_rank_of[vals0[i - 1]] if i > 0 else ENC_NEG
            high = a_rank_of[vals0[i]] if i < n else ENC_POS
            pool.insert_encoded(self.h_root, low, high)
            if counting:
                counters.interval_ops += 1
            member = False
        # --- T(A, C): gaps on A and, under a match, on C (⟨a, *, gap⟩).
        vals0 = self.t_index._vals[0]
        vals1 = self.t_index._vals[1]
        off1 = self.t_index._offs[1]
        if counting:
            counters.findgap += 1
        n = len(vals0)
        i = bisect_left(vals0, a)
        if i < n and vals0[i] == a:
            span_lo, span_hi = off1[i], off1[i + 1]
            if counting:
                counters.findgap += 1
            j = bisect_left(vals1, c, span_lo, span_hi)
            if not (j < span_hi and vals1[j] == c):
                low = c_rank_of[vals1[j - 1]] if j > span_lo else ENC_NEG
                high = c_rank_of[vals1[j]] if j < span_hi else ENC_POS
                pool.insert_encoded(
                    self._eq_a_star_handle(a_rank), low, high
                )
                if counting:
                    counters.interval_ops += 1
                member = False
        else:
            low = a_rank_of[vals0[i - 1]] if i > 0 else ENC_NEG
            high = a_rank_of[vals0[i]] if i < n else ENC_POS
            pool.insert_encoded(self.h_root, low, high)
            if counting:
                counters.interval_ops += 1
            member = False
        # --- S(B, C): gaps on B (⟨*, gap, *⟩) and under a match on C
        #     (⟨*, b, gap⟩ -> dyadic leaf insert).
        vals0 = self.s_index._vals[0]
        vals1 = self.s_index._vals[1]
        off1 = self.s_index._offs[1]
        if counting:
            counters.findgap += 1
        n = len(vals0)
        i = bisect_left(vals0, b)
        if i < n and vals0[i] == b:
            span_lo, span_hi = off1[i], off1[i + 1]
            if counting:
                counters.findgap += 1
            j = bisect_left(vals1, c, span_lo, span_hi)
            if not (j < span_hi and vals1[j] == c):
                low = c_rank_of[vals1[j - 1]] if j > span_lo else ENC_NEG
                high = c_rank_of[vals1[j]] if j < span_hi else ENC_POS
                self._insert_leaf(b_rank, low, high)
                member = False
        else:
            low = b_rank_of[vals0[i - 1]] if i > 0 else ENC_NEG
            high = b_rank_of[vals0[i]] if i < n else ENC_POS
            pool.insert_encoded(self.h_star_b, low, high)
            if counting:
                counters.interval_ops += 1
            member = False
        return member


__all__ = ["ArenaTriangleMinesweeper"]
