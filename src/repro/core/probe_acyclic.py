"""getProbePoint for beta-acyclic queries (paper Algorithms 3 and 4).

When the GAO is a *nested elimination order*, the principal filter
G(t1..ti) — the CDS nodes whose patterns generalize the prefix built so
far and that hold intervals — is a **chain** (Proposition 4.2).  Algorithm 4
(``nextChainVal``) then finds the next value free of every interval along
the chain in amortized O(2^n log W) time, memoizing each inferred gap at
the node that will be asked again (the Example 4.1 trick that turns the
Θ(N^3) brute force into O(N^2)).

``memoize=False`` disables the inference inserts (Algorithm 4 line 13) for
the E12 ablation; the search stays correct but loses the amortization.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.cds import CDSNode, ConstraintTree
from repro.core.constraints import (
    Constraint,
    Pattern,
    equality_count,
    last_equality_position,
    specializes,
)
from repro.util.sentinels import POS_INF, ExtendedValue

ChainEntry = Tuple[CDSNode, Pattern]


class NotAChainError(RuntimeError):
    """The principal filter was not a chain — the GAO is not a NEO."""


def sort_as_chain(entries: List[ChainEntry]) -> List[ChainEntry]:
    """Order filter nodes bottom (most specialized) first; verify chain.

    In a chain, distinct patterns have distinct equality counts, so sorting
    by descending count linearizes it; adjacent comparability is then
    checked explicitly.
    """
    ordered = sorted(entries, key=lambda e: -equality_count(e[1]))
    for (_, narrow), (_, wide) in zip(ordered, ordered[1:]):
        if not specializes(narrow, wide):
            raise NotAChainError(
                f"filter contains incomparable patterns {narrow} / {wide}; "
                "use the general (shadow-chain) strategy"
            )
    return ordered


class ChainProbeStrategy:
    """Algorithm 3: build the probe tuple value by value, backtracking."""

    name = "chain"

    def __init__(self, cds: ConstraintTree, memoize: bool = True) -> None:
        self.cds = cds
        self.memoize = memoize
        # Hoisted once: every interval-op tally goes through this object.
        self.counters = cds.counters
        # prefix -> (cds.version, sorted chain or None when the filter is
        # empty).  Sound because cds.version bumps whenever the principal
        # filter of *any* prefix can change: node creation, eq-child
        # deletion, and a node's intervals turning non-empty.
        self._chains: dict = {}

    def _chain_for(self, prefix: Tuple[int, ...]) -> Optional[List[ChainEntry]]:
        cds = self.cds
        cached = self._chains.get(prefix)
        if cached is not None and cached[0] == cds.version:
            return cached[1]
        filter_nodes = cds.filter_nodes(prefix)
        chain = sort_as_chain(filter_nodes) if filter_nodes else None
        self._chains[prefix] = (cds.version, chain)
        return chain

    def get_probe_point(self) -> Optional[Tuple[int, ...]]:
        """Return an active tuple, or None when the gaps cover everything."""
        cds = self.cds
        t: List[int] = []
        while len(t) < cds.n:
            chain = self._chain_for(tuple(t))
            if chain is None:
                t.append(-1)
                continue
            value = self._next_chain_val(-1, 0, chain)
            if value is not POS_INF:
                t.append(value)  # type: ignore[arg-type]
                continue
            # Every extension of (t1..ti) is covered: record that fact one
            # level up and resume from the bottom pattern's last equality.
            bottom_pattern = chain[0][1]
            i0 = last_equality_position(bottom_pattern)
            if i0 == 0:
                return None
            cds.counters.backtracks += 1
            pinned = bottom_pattern[i0 - 1]
            assert isinstance(pinned, int)
            cds.insert(
                Constraint(bottom_pattern[: i0 - 1], pinned - 1, pinned + 1)
            )
            del t[i0 - 1 :]
        return tuple(t)

    def _next_chain_val(
        self, x: int, j: int, chain: List[ChainEntry]
    ) -> ExtendedValue:
        """Algorithm 4: smallest y >= x free at chain[j] and everything above.

        chain[j] is the current node u; chain[j+1:] are the nodes whose
        patterns strictly generalize P(u).  The inferred gap (x-1, y) is
        memoized at u so repeated climbs are charged only once.
        """
        node = chain[j][0]
        intervals_next = node.intervals.next
        if j == len(chain) - 1:
            self.counters.interval_ops += 1
            return intervals_next(x)
        y: ExtendedValue = x
        ops = 1  # the entry tally, batched with the loop's per-step tallies
        while True:
            z = self._next_chain_val(y, j + 1, chain)  # type: ignore[arg-type]
            if z is POS_INF:
                y = POS_INF
                break
            y = intervals_next(z)  # type: ignore[arg-type]
            ops += 1
            if y == z or y is POS_INF:
                break
        self.counters.interval_ops += ops
        if self.memoize:
            self.cds.insert_interval_at(node, x - 1, y)
        return y
