"""EXPLAIN for Minesweeper: what the engine will do and why.

``explain(query)`` reports the structural analysis the engine performs —
acyclicity class, chosen GAO and whether it is a nested elimination
order, elimination width, the Theorem-2.7/5.1 runtime regime, and the
AGM bound — optionally with a dry run measuring the certificate
estimate.  Rendered by ``format_explanation`` (used by the CLI).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.query import Query
from repro.hypergraph.acyclicity import is_alpha_acyclic, is_beta_acyclic
from repro.hypergraph.agm import agm_bound, fractional_cover_number
from repro.hypergraph.elimination import (
    elimination_width,
    is_nested_elimination_order,
)


@dataclass
class Explanation:
    """The structural facts behind an engine configuration."""

    atoms: List[str]
    n_attributes: int
    input_size: int
    alpha_acyclic: bool
    beta_acyclic: bool
    gao: List[str]
    gao_kind: str
    gao_is_neo: bool
    elimination_width: int
    strategy: str
    runtime_regime: str
    fractional_cover: float
    agm_output_bound: float
    certificate_estimate: Optional[int] = None
    output_size: Optional[int] = None


def explain(
    query: Query,
    gao: Optional[Sequence[str]] = None,
    dry_run: bool = False,
) -> Explanation:
    """Analyze ``query`` (and optionally measure it with a real run)."""
    hypergraph = query.hypergraph()
    if gao is None:
        gao, kind = query.choose_gao()
    else:
        # Validate structurally (a permutation of the attributes) —
        # the with_gao re-index would be O(data) and its result is not
        # needed here.  Same validity condition with_gao enforces.
        gao = list(gao)
        if set(gao) != set(query.attributes()) or len(set(gao)) != len(gao):
            raise ValueError(
                f"invalid GAO {gao}: not a permutation of "
                f"{query.attributes()}"
            )
        kind = "user"
    neo = is_nested_elimination_order(hypergraph, gao)
    width = elimination_width(hypergraph, gao)
    strategy = "chain" if neo else "general"
    if neo:
        regime = "Õ(|C| + Z)  (Theorem 2.7: beta-acyclic + NEO)"
    else:
        regime = (
            f"Õ(|C|^{width + 1} + Z)  "
            f"(Theorem 5.1: elimination width {width})"
        )
    result = Explanation(
        atoms=[f"{r.name}({','.join(r.attributes)})" for r in query.relations],
        n_attributes=len(query.attributes()),
        input_size=query.total_tuples(),
        alpha_acyclic=is_alpha_acyclic(hypergraph),
        beta_acyclic=is_beta_acyclic(hypergraph),
        gao=list(gao),
        gao_kind=kind,
        gao_is_neo=neo,
        elimination_width=width,
        strategy=strategy,
        runtime_regime=regime,
        fractional_cover=round(fractional_cover_number(hypergraph), 4),
        agm_output_bound=round(agm_bound(query), 2),
    )
    if dry_run:
        from repro.core.engine import join

        run = join(query, gao=gao)
        result.certificate_estimate = run.certificate_estimate
        result.output_size = len(run)
    return result


def format_explanation(explanation: Explanation) -> str:
    """Render an :class:`Explanation` as an aligned text report."""
    lines = [
        "query            : " + " ⋈ ".join(explanation.atoms),
        f"attributes (n)   : {explanation.n_attributes}",
        f"input size (N)   : {explanation.input_size}",
        f"alpha-acyclic    : {explanation.alpha_acyclic}",
        f"beta-acyclic     : {explanation.beta_acyclic}",
        f"GAO              : {','.join(explanation.gao)} "
        f"({explanation.gao_kind})",
        f"nested elim order: {explanation.gao_is_neo}",
        f"elimination width: {explanation.elimination_width}",
        f"probe strategy   : {explanation.strategy}",
        f"runtime regime   : {explanation.runtime_regime}",
        f"fractional cover : {explanation.fractional_cover}",
        f"AGM output bound : {explanation.agm_output_bound}",
    ]
    if explanation.certificate_estimate is not None:
        lines.append(
            f"|C| estimate     : {explanation.certificate_estimate} "
            "(measured, FindGap count)"
        )
    if explanation.output_size is not None:
        lines.append(f"output size (Z)  : {explanation.output_size}")
    return "\n".join(lines)
