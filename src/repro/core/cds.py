"""The constraint data structure (CDS): a ConstraintTree (paper §3.3, App. E).

The CDS stores constraints in a tree with one level per GAO attribute
(paper Figure 1).  Each node corresponds to a pattern (the labels on its
root path) and owns

* ``equalities`` — a sorted map from integer labels to child nodes, plus at
  most one ``*`` child, and
* ``intervals`` — an :class:`IntervalList` of gaps on the node's attribute.

Invariant: no equality label at a node is covered by one of the node's
intervals (covered labels' subtrees are subsumed and deleted on insert).

``InsConstraint`` is Algorithm 5.  The probe-point search lives in
:mod:`repro.core.probe_acyclic` / :mod:`repro.core.probe_general`, which
walk this tree.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.core.constraints import (
    Constraint,
    Pattern,
    WILDCARD,
)
from repro.storage.interval_list import (
    INSERT_DISJOINT,
    IntervalList,
    NaiveIntervalList,
)
from repro.storage.sorted_list import SortedList
from repro.util.counters import OpCounters
from repro.util.sentinels import ExtendedValue


class CDSNode:
    """One ConstraintTree node (identified by its root-path pattern)."""

    __slots__ = ("eq_keys", "eq_children", "star", "intervals", "depth")

    def __init__(self, depth: int, interval_factory) -> None:
        self.depth = depth
        self.eq_keys = SortedList()
        self.eq_children: dict = {}
        self.star: Optional["CDSNode"] = None
        self.intervals = interval_factory()

    def child_for(self, component) -> Optional["CDSNode"]:
        """The child along an equality label or the wildcard."""
        if component is WILDCARD:
            return self.star
        return self.eq_children.get(component)


class ConstraintTree:
    """The CDS: InsConstraint plus the node/traversal API probes need."""

    def __init__(
        self,
        n_attributes: int,
        counters: Optional[OpCounters] = None,
        merge_intervals: bool = True,
    ) -> None:
        if n_attributes < 1:
            raise ValueError("need at least one attribute")
        self.n = n_attributes
        self.counters = counters if counters is not None else OpCounters()
        self._interval_factory = (
            IntervalList if merge_intervals else NaiveIntervalList
        )
        self.root = CDSNode(0, self._interval_factory)
        #: bumped whenever a node is created, so probe strategies can
        #: invalidate cached frontiers.
        self.version = 0
        self.constraints_inserted = 0

    # ------------------------------------------------------------------
    # Node management
    # ------------------------------------------------------------------

    def _make_child(self, node: CDSNode, component) -> CDSNode:
        child = CDSNode(node.depth + 1, self._interval_factory)
        if component is WILDCARD:
            node.star = child
        else:
            node.eq_keys.insert(component)
            node.eq_children[component] = child
        self.version += 1
        return child

    def ensure_node(self, pattern: Pattern) -> CDSNode:
        """Get-or-create the node for ``pattern`` (shadow-node creation).

        Replaces the paper's ⟨pattern, (-inf, 0)⟩ placeholder-insert trick
        (Algorithm 6 line 13) with a pure structural operation, so the
        value domain needn't dodge the placeholder interval.
        """
        node = self.root
        for component in pattern:
            child = node.child_for(component)
            if child is None:
                child = self._make_child(node, component)
            node = child
        return node

    def find_node(self, pattern: Pattern) -> Optional[CDSNode]:
        node: Optional[CDSNode] = self.root
        for component in pattern:
            if node is None:
                return None
            node = node.child_for(component)
        return node

    # ------------------------------------------------------------------
    # InsConstraint (Algorithm 5)
    # ------------------------------------------------------------------

    def insert(self, constraint: Constraint) -> bool:
        """Insert a constraint; returns False when subsumed or empty.

        Walks the prefix creating nodes as needed; an equality component
        already covered by an ancestor's interval means the new constraint
        is subsumed.  At the interval level, covered equality children are
        deleted (their subtrees are subsumed by the new interval).
        """
        self.counters.constraints += 1
        self.constraints_inserted += 1
        if constraint.is_empty():
            return False
        if constraint.interval_position >= self.n:
            raise ValueError(
                f"constraint dimension {constraint.interval_position} "
                f"exceeds attribute count {self.n}"
            )
        node = self.root
        for component in constraint.prefix:
            child = node.child_for(component)
            if child is None:
                # The covers probe is needed only on the creation path:
                # an *existing* equality child is never covered by its
                # parent's intervals (covered labels' subtrees are pruned
                # whenever an interval lands, and nodes are only created
                # for uncovered labels — the module invariant), so the
                # historical unconditional re-check was redundant there.
                if component is not WILDCARD and node.intervals.covers(
                    component
                ):
                    return False  # subsumed by an existing, more general gap
                child = self._make_child(node, component)
            node = child
        self.insert_interval_at(node, constraint.low, constraint.high)
        return True

    def insert_many(self, constraints) -> None:
        """InsConstraint for a batch (one engine probe's discoveries).

        Semantically ``for c in constraints: self.insert(c)``; the arena
        backend overlaps this with hot-path local binding, so engines
        call it for every non-member probe.
        """
        for constraint in constraints:
            self.insert(constraint)

    def insert_point(self, prefix: Tuple[int, ...], value: int) -> bool:
        """Rule out exactly ``prefix + (value,)`` — the output-tuple gap.

        Semantically ``insert(⟨prefix, (value-1, value+1)⟩)``, which is
        what engines insert after emitting an output; the arena backend
        skips the Constraint wrapper on this per-output path.
        """
        return self.insert(Constraint.trusted(prefix, value - 1, value + 1))

    def insert_interval_at(
        self, node: CDSNode, low: ExtendedValue, high: ExtendedValue
    ) -> None:
        """Insert (low, high) into a node, pruning covered equality children.

        Used directly by the probe strategies to memoize inferred gaps at a
        node they already hold (Algorithm 4 line 13) without re-walking the
        prefix.
        """
        self.counters.interval_ops += 1
        intervals = node.intervals
        code = intervals.insert(low, high)
        if not code:
            return
        if code == INSERT_DISJOINT and len(intervals) == 1:
            # A disjoint add that left exactly one interval means the list
            # was empty before: the node just entered every principal
            # filter containing its pattern, so cached probe frontiers
            # must be invalidated.  (The insert code replaces the old
            # pre-insert emptiness read.)
            self.version += 1
        if not node.eq_keys:  # no equality children to prune (common case)
            return
        removed = node.eq_keys.delete_interval(low, high)
        for label in removed:
            del node.eq_children[label]
        if removed:
            self.version += 1

    # ------------------------------------------------------------------
    # Traversal used by probe strategies
    # ------------------------------------------------------------------

    def frontier(self, prefix: Tuple[int, ...]) -> List[Tuple[CDSNode, Pattern]]:
        """All nodes whose pattern generalizes the all-equality ``prefix``.

        Walks from the root taking, at level j, both the equality child
        labelled prefix[j] and the ``*`` child.  Size is at most 2^|prefix|
        (the paper's 2^n factor) but small in practice.
        """
        frontier: List[Tuple[CDSNode, Pattern]] = [(self.root, ())]
        for value in prefix:
            extended: List[Tuple[CDSNode, Pattern]] = []
            for node, pattern in frontier:
                eq_child = node.eq_children.get(value)
                if eq_child is not None:
                    extended.append((eq_child, pattern + (value,)))
                if node.star is not None:
                    extended.append((node.star, pattern + (WILDCARD,)))
            frontier = extended
        return frontier

    def filter_nodes(
        self, prefix: Tuple[int, ...]
    ) -> List[Tuple[CDSNode, Pattern]]:
        """The principal filter G(prefix): frontier nodes with intervals."""
        return [
            (node, pattern)
            for node, pattern in self.frontier(prefix)
            if node.intervals
        ]

    # ------------------------------------------------------------------
    # Introspection (tests, debugging)
    # ------------------------------------------------------------------

    def iter_nodes(self) -> Iterator[Tuple[Pattern, CDSNode]]:
        stack: List[Tuple[Pattern, CDSNode]] = [((), self.root)]
        while stack:
            pattern, node = stack.pop()
            yield pattern, node
            for label in node.eq_keys:
                stack.append((pattern + (label,), node.eq_children[label]))
            if node.star is not None:
                stack.append((pattern + (WILDCARD,), node.star))

    def node_covers(self, node: CDSNode, value: int) -> bool:
        """True iff ``node``'s intervals strictly contain ``value``.

        Backend-agnostic introspection: the arena tree exposes the same
        method over its integer node handles.
        """
        return node.intervals.covers(value)

    def covers_row(self, row: Tuple[int, ...]) -> bool:
        """True iff some stored gap covers the output-space point ``row``.

        Reference semantics for tests: a row is covered when, walking any
        generalizing path, some node's interval contains the next value.
        """
        frontier: List[CDSNode] = [self.root]
        for value in row:
            next_frontier: List[CDSNode] = []
            for node in frontier:
                if node.intervals.covers(value):
                    return True
                child = node.eq_children.get(value)
                if child is not None:
                    next_frontier.append(child)
                if node.star is not None:
                    next_frontier.append(node.star)
            frontier = next_frontier
        return False
