"""GAO optimization — the paper's §7 "Indexing and Certificates" direction.

The certificate size depends on the GAO, and the paper observes (Ex. B.6)
that the best order is data-dependent: no structural rule can always find
it.  This module provides the pragmatic tool the paper gestures at:
*measure* the certificate estimate (FindGap count) of candidate GAOs by
running the engine, and keep the cheapest.

Candidate generation is structural-first: all nested elimination orders
that the nest-point peeling can produce (beta-acyclic queries), the
min-fill order, plus exhaustive permutations when n is small or random
samples otherwise.  ``search_gao`` is exact-output (every candidate run
computes the true join); ``estimate_certificate`` exposes the per-order
measurement on its own.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.engine import join
from repro.core.query import Query
from repro.hypergraph.acyclicity import nest_points
from repro.hypergraph.elimination import min_fill_order
from repro.hypergraph.hypergraph import Hypergraph


def estimate_certificate(query: Query, gao: Sequence[str]) -> int:
    """FindGap count of a Minesweeper run under ``gao`` (Figure 2's |C|)."""
    return join(query, gao=gao).certificate_estimate


def all_nested_elimination_orders(
    hypergraph: Hypergraph, limit: int = 32
) -> List[List[str]]:
    """Up to ``limit`` distinct NEOs, by branching over nest points.

    The nest-point peeling of Proposition A.6 usually has several valid
    choices at each step; different choices yield different NEOs with
    possibly very different certificate sizes (Example B.7).

    ``limit`` counts *distinct* orders, enforced as orders are produced
    (before the cutoff).  With the current peeling each recursion path
    is a distinct choice sequence, so duplicates cannot actually arise;
    the in-loop dedup pins the "asking for 32 yields up to 32 distinct
    NEOs" contract structurally rather than leaving it to that
    argument.
    """
    seen: set = set()
    results: List[List[str]] = []

    def peel(current: Hypergraph, suffix: List[str]) -> None:
        if len(results) >= limit:
            return
        if not current.vertices:
            order = tuple(reversed(suffix))
            if order not in seen:
                seen.add(order)
                results.append(list(order))
            return
        for v in nest_points(current):
            peel(current.remove_vertex(v), suffix + [v])
            if len(results) >= limit:
                return

    peel(hypergraph, [])
    return results


@dataclass
class GaoSearchResult:
    """Best order found plus the full scoreboard."""

    best_gao: List[str]
    best_estimate: int
    scoreboard: List[Tuple[Tuple[str, ...], int]]

    def __repr__(self) -> str:
        return (
            f"GaoSearchResult(best={list(self.best_gao)}, "
            f"estimate={self.best_estimate}, "
            f"candidates={len(self.scoreboard)})"
        )


def candidate_gaos(
    query: Query,
    exhaustive_below: int = 6,
    samples: int = 12,
    neo_limit: int = 16,
    seed: int = 0,
    rng: Optional[random.Random] = None,
) -> List[Tuple[str, ...]]:
    """Deduplicated candidate GAOs, in generation order.

    Every permutation when n < ``exhaustive_below``; otherwise all NEOs
    (up to ``neo_limit``), the min-fill order, and ``samples`` random
    permutations.  Random sampling draws from ``rng`` when given, else
    from a private ``random.Random(seed)`` — never from the global
    ``random`` module — so two calls with the same arguments produce
    the same candidate list (and so the same downstream scoreboard).
    """
    attributes = query.attributes()
    n = len(attributes)
    hypergraph = query.hypergraph()
    candidates: List[Tuple[str, ...]] = []
    if n < exhaustive_below:
        candidates = [tuple(p) for p in itertools.permutations(attributes)]
    else:
        for order in all_nested_elimination_orders(hypergraph, neo_limit):
            candidates.append(tuple(order))
        candidates.append(tuple(min_fill_order(hypergraph)))
        generator = rng if rng is not None else random.Random(seed)
        for _ in range(samples):
            perm = attributes[:]
            generator.shuffle(perm)
            candidates.append(tuple(perm))
    seen = set()
    unique: List[Tuple[str, ...]] = []
    for candidate in candidates:
        if candidate not in seen:
            seen.add(candidate)
            unique.append(candidate)
    return unique


def search_gao(
    query: Query,
    exhaustive_below: int = 6,
    samples: int = 12,
    neo_limit: int = 16,
    seed: int = 0,
    rng: Optional[random.Random] = None,
) -> GaoSearchResult:
    """Find the GAO minimizing the measured certificate estimate.

    Candidates come from :func:`candidate_gaos`; each costs one full
    engine run.  ``seed`` (or an explicit ``rng``) pins the random
    permutation sample, making the search reproducible run-to-run.
    """
    scoreboard: List[Tuple[Tuple[str, ...], int]] = []
    for candidate in candidate_gaos(
        query,
        exhaustive_below=exhaustive_below,
        samples=samples,
        neo_limit=neo_limit,
        seed=seed,
        rng=rng,
    ):
        estimate = estimate_certificate(query, list(candidate))
        scoreboard.append((candidate, estimate))
    scoreboard.sort(key=lambda item: item[1])
    best, best_estimate = scoreboard[0]
    return GaoSearchResult(list(best), best_estimate, scoreboard)
