"""Admission control and resilience policy for query execution.

The paper's certificate bound says Minesweeper does work proportional
to the *instance's* difficulty — but a serving layer cannot rely on
every query being reasonably bounded, and a pooled shard run adds a
whole new failure plane (worker death, hangs, poisoned results).  This
module holds the vocabulary both concerns share:

* :class:`QueryBudget` — declarative per-query limits (max CDS ops,
  wall-clock deadline, max output rows).  ``admit()`` pins the deadline
  to an absolute clock instant and returns the :class:`AdmittedQuery`
  the engines consult cooperatively.
* The typed error taxonomy — :class:`BudgetExceeded`,
  :class:`QueryTimeout`, and :class:`ShardFailure`, all under one
  :class:`ExecutionError` base, so callers (CLI exit code 4, script
  per-line attribution) can catch "the query was aborted by policy"
  without pattern-matching message strings.
* :class:`RetryPolicy` — how the shard supervisor responds to a failed
  shard attempt: bounded retries with exponential backoff, an optional
  per-attempt timeout, and a deterministic in-process fallback.
* :class:`CircuitBreaker` — repeated pool-attempt failures across
  queries trip it open, downgrading the session to in-process
  execution (``workers=0``) with a recorded reason.
* :class:`ResilienceStats` — plain counters the supervisor increments
  and the session exports through the unified stats tree / Prometheus.

Everything here is engine-agnostic plain data; ``core``, ``parallel``,
``serve``, and the CLI all import it without layering violations.

Note the distinction from :class:`~repro.core.minesweeper.MinesweeperError`:
that error means the *engine* detected a problem (progress bug, probe
safety valve, the planner's scoring cap) and stays internal; the
errors here mean *policy* aborted a healthy engine and are part of the
serving API.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Type


class ExecutionError(RuntimeError):
    """Base of every policy-originated query abort (typed taxonomy)."""


class BudgetExceeded(ExecutionError):
    """The query hit its :class:`QueryBudget` ops or rows limit."""

    def __init__(self, resource: str, limit: int, used: int) -> None:
        super().__init__(
            f"query budget exceeded: {resource} limit {limit} "
            f"(used {used})"
        )
        self.resource = resource
        self.limit = limit
        self.used = used

    def __reduce__(
        self,
    ) -> Tuple[Type[BudgetExceeded], Tuple[str, int, int]]:
        # Default exception pickling would re-call __init__ with the
        # formatted message as ``resource``; shard workers ship these
        # through a Pipe, so round-trip the real fields.
        return (BudgetExceeded, (self.resource, self.limit, self.used))


class QueryTimeout(ExecutionError):
    """The query's wall-clock deadline passed before it finished."""

    def __init__(self, deadline_s: float, where: str = "driver") -> None:
        super().__init__(
            f"query deadline of {deadline_s * 1000:.0f} ms exceeded "
            f"({where})"
        )
        self.deadline_s = deadline_s
        self.where = where

    def __reduce__(
        self,
    ) -> Tuple[Type[QueryTimeout], Tuple[float, str]]:
        return (QueryTimeout, (self.deadline_s, self.where))


class ShardFailure(ExecutionError):
    """A shard could not produce a result after the retry policy and
    the in-process fallback were exhausted.

    Carries the shard's identity (plan index, leading-attribute range)
    and the per-attempt fault history (``crash`` / ``timeout`` /
    ``poison`` / ``error``) so operators can see *how* it died, not
    just that it did.
    """

    def __init__(
        self,
        index: int,
        lo: int,
        hi: int,
        attempts: int,
        faults: List[str],
        detail: str = "",
    ) -> None:
        suffix = f": {detail}" if detail else ""
        super().__init__(
            f"shard {index} [{lo}, {hi}] failed after {attempts} "
            f"attempt(s) (faults: {', '.join(faults) or 'none'})"
            f"{suffix}"
        )
        self.index = index
        self.lo = lo
        self.hi = hi
        self.attempts = attempts
        self.faults = list(faults)
        self.detail = detail

    def __reduce__(
        self,
    ) -> Tuple[
        Type[ShardFailure], Tuple[int, int, int, int, List[str], str]
    ]:
        return (
            ShardFailure,
            (
                self.index,
                self.lo,
                self.hi,
                self.attempts,
                self.faults,
                self.detail,
            ),
        )


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class QueryBudget:
    """Declarative per-query limits (all optional, ``None`` = unbounded).

    ``max_ops`` counts tallied CDS work (``interval_ops + constraints``,
    the same measure as ``Minesweeper.max_ops`` — ROADMAP item 1's QoS
    knob, now surfaced as a typed :class:`BudgetExceeded` instead of an
    internal engine error).  Like that knob it needs counting counters:
    under :class:`~repro.util.counters.NullCounters` the tallies stay
    zero and the cap never fires.  ``deadline_ms`` is wall-clock from
    :meth:`admit`; ``max_rows`` bounds output tuples.
    """

    max_ops: Optional[int] = None
    deadline_ms: Optional[int] = None
    max_rows: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("max_ops", "deadline_ms", "max_rows"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")

    @property
    def bounded(self) -> bool:
        return (
            self.max_ops is not None
            or self.deadline_ms is not None
            or self.max_rows is not None
        )

    def admit(self) -> "AdmittedQuery":
        """Start the clock: pin the deadline to an absolute instant."""
        return AdmittedQuery(self)


class AdmittedQuery:
    """One query's live budget: absolute deadline plus check methods.

    The engines call :meth:`tick` cooperatively from their hot loop;
    the deadline is only read every ``DEADLINE_STRIDE`` ticks so an
    unbounded-deadline budget costs two integer compares per probe.
    """

    DEADLINE_STRIDE = 64

    def __init__(self, budget: QueryBudget) -> None:
        self.budget = budget
        self.deadline: Optional[float] = None
        if budget.deadline_ms is not None:
            self.deadline = (
                time.monotonic()  # lint: disable=determinism -- abort timing only; never feeds result values
                + budget.deadline_ms / 1000.0
            )
        self._ticks = 0

    # -- individual checks ---------------------------------------------

    def check_ops(self, ops: int) -> None:
        max_ops = self.budget.max_ops
        if max_ops is not None and ops > max_ops:
            raise BudgetExceeded("ops", max_ops, ops)

    def check_rows(self, rows: int) -> None:
        max_rows = self.budget.max_rows
        if max_rows is not None and rows > max_rows:
            raise BudgetExceeded("rows", max_rows, rows)

    def check_deadline(self, where: str = "driver") -> None:
        if self.deadline is not None and (
            time.monotonic() > self.deadline  # lint: disable=determinism -- abort timing only; never feeds result values
        ):
            assert self.budget.deadline_ms is not None
            raise QueryTimeout(self.budget.deadline_ms / 1000.0, where)

    def remaining_s(self) -> Optional[float]:
        """Seconds until the deadline (``None`` = unbounded) — what a
        shard payload ships so pool workers can self-cancel."""
        if self.deadline is None:
            return None
        return max(
            0.0,
            self.deadline - time.monotonic(),  # lint: disable=determinism -- abort timing only; never feeds result values
        )

    def expired(self) -> bool:
        return self.deadline is not None and (
            time.monotonic() > self.deadline  # lint: disable=determinism -- abort timing only; never feeds result values
        )

    # -- the engine hot-loop entry -------------------------------------

    def tick(self, ops: int, rows: int, where: str = "engine") -> None:
        """One cooperative checkpoint from an engine loop."""
        self.check_ops(ops)
        self.check_rows(rows)
        self._ticks += 1
        if self._ticks % self.DEADLINE_STRIDE == 0:
            self.check_deadline(where)


def admit(budget: Optional[QueryBudget]) -> Optional[AdmittedQuery]:
    """``budget.admit()`` through an Optional (the common call shape)."""
    if budget is None or not budget.bounded:
        return None
    return budget.admit()


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """How the shard supervisor treats a failed shard attempt.

    A failed *pooled* attempt (worker death, per-attempt timeout,
    poisoned result, worker exception) is retried up to ``retries``
    times with exponential backoff (``backoff_s * 2**k``), then — when
    ``fallback`` is on — re-executed deterministically in-process, so
    a transiently faulty pool still returns rows byte-identical to the
    sequential mode.  Only when all of that is exhausted does the run
    raise :class:`ShardFailure`.
    """

    retries: int = 2
    backoff_s: float = 0.05
    #: Per-attempt wall-clock limit (None = no per-shard timeout; the
    #: query deadline, when set, still bounds the whole run).
    shard_timeout_s: Optional[float] = None
    fallback: bool = True

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_s < 0:
            raise ValueError(
                f"backoff_s must be >= 0, got {self.backoff_s}"
            )
        if self.shard_timeout_s is not None and self.shard_timeout_s <= 0:
            raise ValueError(
                f"shard_timeout_s must be positive, got "
                f"{self.shard_timeout_s}"
            )

    def backoff_for(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based retry index)."""
        return self.backoff_s * (2 ** max(0, attempt - 1))


DEFAULT_RETRY_POLICY = RetryPolicy()


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------


class CircuitBreaker:
    """Trips open after ``threshold`` consecutive pool-attempt failures.

    Owned by the session (failures accumulate *across* queries — a
    flaky pool shows up as a drizzle, not a burst); once open, the
    session downgrades pooled plans to ``workers=0`` with the recorded
    reason, trading parallelism for certainty.  The breaker stays open
    until :meth:`reset` — a degraded host rarely heals mid-session,
    and the in-process mode is always correct.
    """

    def __init__(self, threshold: int = 5) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.consecutive_failures = 0
        self.trips = 0
        self.reason: Optional[str] = None
        self._open = False

    @property
    def open(self) -> bool:
        return self._open

    def allow_pool(self) -> bool:
        """May the next run use a worker pool?"""
        return not self._open

    def record_success(self) -> None:
        if not self._open:
            self.consecutive_failures = 0

    def record_failure(self, reason: str) -> None:
        self.consecutive_failures += 1
        if not self._open and self.consecutive_failures >= self.threshold:
            self._open = True
            self.trips += 1
            self.reason = (
                f"{self.consecutive_failures} consecutive pool failures "
                f"(last: {reason})"
            )

    def reset(self) -> None:
        self._open = False
        self.consecutive_failures = 0
        self.reason = None

    def stats(self) -> Dict[str, object]:
        return {
            "open": self._open,
            "trips": self.trips,
            "consecutive_failures": self.consecutive_failures,
            "threshold": self.threshold,
            "reason": self.reason or "",
        }

    def __repr__(self) -> str:
        state = "open" if self._open else "closed"
        return (
            f"CircuitBreaker({state}, "
            f"failures={self.consecutive_failures}/{self.threshold})"
        )


# ----------------------------------------------------------------------
# Stats
# ----------------------------------------------------------------------


@dataclass
class ResilienceStats:
    """Plain counters the supervisor increments (session-cumulative).

    Exported under ``execution.resilience`` in the unified stats tree
    and mirrored into native Prometheus counters per query (see
    ``Session._observe_resilience``).
    """

    attempts: int = 0
    retries: int = 0
    worker_deaths: int = 0
    timeouts: int = 0
    poisoned: int = 0
    worker_errors: int = 0
    fallbacks: int = 0
    shards_discarded: int = 0
    downgrades: int = 0
    #: retries by fault kind, e.g. {"crash": 3, "timeout": 1}.
    retries_by_fault: Dict[str, int] = field(default_factory=dict)

    def record_retry(self, fault: str) -> None:
        self.retries += 1
        self.retries_by_fault[fault] = (
            self.retries_by_fault.get(fault, 0) + 1
        )

    def snapshot(self) -> Dict[str, int]:
        flat = {
            "attempts": self.attempts,
            "retries": self.retries,
            "worker_deaths": self.worker_deaths,
            "timeouts": self.timeouts,
            "poisoned": self.poisoned,
            "worker_errors": self.worker_errors,
            "fallbacks": self.fallbacks,
            "shards_discarded": self.shards_discarded,
            "downgrades": self.downgrades,
        }
        for fault, count in sorted(self.retries_by_fault.items()):
            flat[f"retries_{fault}"] = count
        return flat
