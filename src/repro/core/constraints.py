"""Constraints and patterns (paper Sections 3.1 and 4.2).

A *constraint* is an n-dimensional vector

    ⟨c1, ..., c_{i-1}, (l, r), *, ..., *⟩

with exactly one open-interval component; everything after it is a wildcard,
and the prefix before it — the *pattern* — mixes equality components
(integers) and wildcards.  Geometrically the constraint is an axis-aligned
slab of the output space known to contain no output tuple.

A *pattern* p' is a **specialization** of p (written p' ⪯ p) when it agrees
with p on every equality component of p.  Patterns generalizing a prefix
(t1..ti) form the CDS's *principal filter*, whose shape (chain or not)
separates the beta-acyclic from the general probe algorithm.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

from repro.storage.interval_list import interval_is_empty as _interval_is_empty
from repro.util.sentinels import ExtendedValue


class _Wildcard:
    """Singleton wildcard pattern component; prints as ``*``."""

    __slots__ = ()
    _instance: Optional["_Wildcard"] = None

    def __new__(cls) -> "_Wildcard":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "*"


WILDCARD = _Wildcard()

PatternComponent = Union[int, _Wildcard]
Pattern = Tuple[PatternComponent, ...]


class Constraint:
    """An output-space gap ⟨prefix..., (low, high), *...⟩.

    ``prefix`` is the pattern before the interval; the interval sits at
    attribute position ``len(prefix)`` (0-based in the GAO).  Trailing
    wildcards are implicit.
    """

    __slots__ = ("prefix", "low", "high")

    def __init__(
        self,
        prefix: Sequence[PatternComponent],
        low: ExtendedValue,
        high: ExtendedValue,
    ) -> None:
        for component in prefix:
            ok = component is WILDCARD or (
                isinstance(component, int) and not isinstance(component, bool)
            )
            if not ok:
                raise TypeError(f"bad pattern component {component!r}")
        self.prefix: Pattern = tuple(prefix)
        self.low = low
        self.high = high

    @classmethod
    def trusted(
        cls,
        prefix: Pattern,
        low: ExtendedValue,
        high: ExtendedValue,
    ) -> "Constraint":
        """Construct without component validation.

        For engine-internal call sites whose prefixes are built from
        index values and WILDCARD only; ``prefix`` must already be a
        tuple.  Semantically identical to the validating constructor.
        """
        self = cls.__new__(cls)
        self.prefix = prefix
        self.low = low
        self.high = high
        return self

    @property
    def interval_position(self) -> int:
        """0-based GAO position of the interval component."""
        return len(self.prefix)

    def is_empty(self) -> bool:
        """True iff the interval contains no integer."""
        return _interval_is_empty(self.low, self.high)

    def satisfied_by(self, row: Sequence[int]) -> bool:
        """True iff the output-space point ``row`` lies inside this gap."""
        if len(row) <= self.interval_position:
            raise ValueError("row shorter than the constraint's dimension")
        for component, value in zip(self.prefix, row):
            if component is WILDCARD:
                continue
            if component != value:
                return False
        value = row[self.interval_position]
        return self.low < value < self.high

    def __repr__(self) -> str:
        parts = [repr(c) for c in self.prefix]
        parts.append(f"({self.low!r},{self.high!r})")
        return "⟨" + ",".join(parts) + ",*...⟩"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Constraint):
            return NotImplemented
        return (
            self.prefix == other.prefix
            and self.low == other.low
            and self.high == other.high
        )

    def __hash__(self) -> int:
        return hash((self.prefix, repr(self.low), repr(self.high)))


def specializes(narrow: Pattern, wide: Pattern) -> bool:
    """True iff ``narrow`` ⪯ ``wide`` (agrees on all of wide's equalities)."""
    if len(narrow) != len(wide):
        return False
    for a, b in zip(narrow, wide):
        if b is WILDCARD:
            continue
        if a != b:
            return False
    return True


def generalizes_prefix(pattern: Pattern, prefix: Sequence[int]) -> bool:
    """True iff the all-equality prefix (t1..ti) is a specialization."""
    if len(pattern) != len(prefix):
        return False
    for component, value in zip(pattern, prefix):
        if component is WILDCARD:
            continue
        if component != value:
            return False
    return True


def equality_count(pattern: Pattern) -> int:
    """Number of non-wildcard components (the pattern's |P(u)| size)."""
    return sum(1 for c in pattern if c is not WILDCARD)


def meet(p1: Pattern, p2: Pattern) -> Optional[Pattern]:
    """Greatest lower bound under ⪯: the union of equality components.

    Returns None when the patterns conflict (both fix a position to
    different values).  For patterns generalizing a common prefix the meet
    always exists.
    """
    if len(p1) != len(p2):
        raise ValueError("meet of patterns of different lengths")
    out = []
    for a, b in zip(p1, p2):
        if a is WILDCARD:
            out.append(b)
        elif b is WILDCARD or a == b:
            out.append(a)
        else:
            return None
    return tuple(out)


def last_equality_position(pattern: Pattern) -> int:
    """1-based position of the last equality component (0 if none).

    This is the i0 of Algorithm 3 line 11 — where backtracking re-enters.
    """
    for j in range(len(pattern) - 1, -1, -1):
        if pattern[j] is not WILDCARD:
            return j + 1
    return 0


def constraint_from_values(
    gao_positions: Sequence[int],
    values: Sequence[int],
    interval_gao_position: int,
    low: ExtendedValue,
    high: ExtendedValue,
) -> Constraint:
    """Build a constraint whose equalities sit at given GAO positions.

    ``gao_positions`` are 0-based positions (strictly increasing, all less
    than ``interval_gao_position``) receiving ``values``; every other slot
    before the interval is a wildcard.
    """
    prefix: list = [WILDCARD] * interval_gao_position
    for pos, val in zip(gao_positions, values):
        if pos >= interval_gao_position:
            raise ValueError("equality position beyond the interval")
        prefix[pos] = val
    return Constraint(prefix, low, high)
