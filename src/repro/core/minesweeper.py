"""The Minesweeper outer algorithm (paper Algorithm 2).

The loop: ask the CDS for an *active* tuple t (one no known gap covers);
probe every relation around t with ``FindGap`` along all 2^p low/high index
chains; if t's projection is present in every relation, emit t and rule out
exactly t; otherwise insert every discovered gap as a constraint.  At least
one discovered gap always covers t (the charging argument in the proof of
Theorem 3.2), so the algorithm makes progress and terminates.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cds import ConstraintTree
from repro.core.constraints import Constraint, WILDCARD
from repro.core.probe_acyclic import ChainProbeStrategy
from repro.core.probe_general import GeneralProbeStrategy
from repro.core.query import PreparedQuery
from repro.storage.relation import Relation
from repro.util.counters import OpCounters

LOW, HIGH = 0, 1  # the paper's  l / h  exploration symbols


class MinesweeperError(RuntimeError):
    """Raised when the engine detects it has stopped making progress."""


class Minesweeper:
    """Evaluate a prepared natural-join query with the Minesweeper algorithm.

    Parameters
    ----------
    query:
        A :class:`PreparedQuery` (relations indexed consistently with its
        GAO).
    strategy:
        ``"auto"`` (chain when the GAO is a nested elimination order, else
        general / shadow-chain), or explicitly ``"chain"`` / ``"general"``.
    memoize:
        Pass False to disable Algorithm 4/7 gap-inference memoization
        (ablation E12).
    merge_intervals:
        Pass False to store CDS intervals unmerged (ablation E13).
    """

    def __init__(
        self,
        query: PreparedQuery,
        strategy: str = "auto",
        memoize: bool = True,
        merge_intervals: bool = True,
        max_probes: Optional[int] = None,
    ) -> None:
        self.query = query
        self.counters: OpCounters = query.counters
        self.cds = ConstraintTree(
            query.n, counters=self.counters, merge_intervals=merge_intervals
        )
        if strategy == "auto":
            strategy = "chain" if query.is_neo_gao() else "general"
        if strategy == "chain":
            self.probe = ChainProbeStrategy(self.cds, memoize=memoize)
        elif strategy == "general":
            self.probe = GeneralProbeStrategy(self.cds, memoize=memoize)
        else:
            raise ValueError(f"unknown strategy {strategy!r}")
        self.strategy = strategy
        #: Optional observer called as
        #: ``gap_hook(relation, gao_position, chain, target, lo_idx, hi_idx)``
        #: for every FindGap the exploration performs (used by the
        #: certificate recorder, Proposition 2.5).
        self.gap_hook = None
        if max_probes is None:
            # Generous safety valve: Theorem 3.2 bounds non-output probes by
            # O(2^r |C|) and |C| <= r N; outputs are unbounded a priori and
            # are credited separately inside run().
            r = query.max_arity()
            m = len(query.relations)
            n = query.total_tuples()
            max_probes = 1000 + 64 * (2**r) * max(r, 1) * m * (n + 1)
        self.max_probes = max_probes

    # ------------------------------------------------------------------

    def run(self) -> List[Tuple[int, ...]]:
        """Compute the join; returns output tuples in GAO order."""
        return list(self.iterate())

    def iterate(self):
        """Yield output tuples as they are discovered (GAO order).

        Because Minesweeper's work is certificate-bound rather than
        input-bound, early termination (``itertools.islice`` for top-k)
        stops the engine after work proportional to the part of the
        certificate it actually consumed — the Fagin-style use case the
        paper relates to in §6.3.
        """
        counters = self.counters
        relations = self.query.relations
        positions = self.query.gao_positions
        n = self.query.n
        budget = self.max_probes
        while True:
            t = self.probe.get_probe_point()
            if t is None:
                return
            counters.probes += 1
            if counters.probes - counters.output_tuples > budget:
                raise MinesweeperError(
                    f"probe budget {budget} exhausted at t={t}; "
                    "the CDS is not making progress"
                )
            explorations = [
                self._explore(rel, positions[rel.name], t)
                for rel in relations
            ]
            if all(member for member, _ in explorations):
                counters.output_tuples += 1
                self.cds.insert(
                    Constraint(t[: n - 1], t[n - 1] - 1, t[n - 1] + 1)
                )
                yield t
            else:
                inserted_covering = False
                for _, constraints in explorations:
                    for constraint in constraints:
                        self.cds.insert(constraint)
                        if not inserted_covering and constraint.satisfied_by(t):
                            inserted_covering = True
                if not inserted_covering:
                    raise MinesweeperError(
                        f"no discovered gap covers probe point {t}; "
                        "exploration bug"
                    )

    # ------------------------------------------------------------------

    def _explore(
        self,
        relation: Relation,
        gao_positions: Sequence[int],
        t: Tuple[int, ...],
    ) -> Tuple[bool, List[Constraint]]:
        """Probe ``relation`` around t (Algorithm 2 lines 4-10 and 15-21).

        Returns ``(is_member, constraints)`` where ``is_member`` says t's
        projection is a tuple of the relation, and ``constraints`` lists
        the (non-empty) gaps found along every in-range {l,h}-index chain.
        """
        index = relation.index
        k = relation.arity
        # Index chains: v-vector in {LOW,HIGH}^p -> the 1-based index tuple
        # (i^{v1}, ..., i^{v1..vp}), or None when some coordinate fell out
        # of range.  Value chains mirror them with the addressed values.
        idx_chains: Dict[Tuple[int, ...], Optional[Tuple[int, ...]]] = {(): ()}
        val_chains: Dict[Tuple[int, ...], Tuple[int, ...]] = {(): ()}
        gaps: Dict[Tuple[int, ...], Tuple[int, int]] = {}
        member = True
        for p in range(k):
            target = t[gao_positions[p]]
            for v in itertools.product((LOW, HIGH), repeat=p):
                chain = idx_chains.get(v)
                if chain is None:
                    idx_chains[v + (LOW,)] = None
                    idx_chains[v + (HIGH,)] = None
                    continue
                lo_idx, hi_idx = index.find_gap(chain, target)
                gaps[v] = (lo_idx, hi_idx)
                fan = index.fanout(chain)
                if self.gap_hook is not None:
                    self.gap_hook(
                        relation, gao_positions[p], chain, target,
                        lo_idx, hi_idx,
                    )
                for symbol, coord in ((LOW, lo_idx), (HIGH, hi_idx)):
                    if 1 <= coord <= fan:
                        idx_chains[v + (symbol,)] = chain + (coord,)
                        val_chains[v + (symbol,)] = val_chains[v] + (
                            index.value(chain + (coord,)),  # type: ignore[arg-type]
                        )
                    else:
                        idx_chains[v + (symbol,)] = None
            all_high = (HIGH,) * p
            if member:
                gap = gaps.get(all_high)
                if gap is None or gap[0] != gap[1]:
                    member = False
        constraints: List[Constraint] = []
        for p in range(k):
            interval_gao_position = gao_positions[p]
            for v in itertools.product((LOW, HIGH), repeat=p):
                chain = idx_chains.get(v)
                if chain is None or v not in gaps:
                    continue
                lo_idx, hi_idx = gaps[v]
                if lo_idx == hi_idx:
                    continue  # target value present: the gap is empty
                low = index.value(chain + (lo_idx,))
                high = index.value(chain + (hi_idx,))
                prefix: List = [WILDCARD] * interval_gao_position
                for j, value in enumerate(val_chains[v]):
                    prefix[gao_positions[j]] = value
                constraints.append(Constraint(prefix, low, high))
        return member, constraints


def minesweeper_join(
    query: PreparedQuery, **kwargs
) -> List[Tuple[int, ...]]:
    """Run Minesweeper on a prepared query and return its output tuples."""
    return Minesweeper(query, **kwargs).run()
