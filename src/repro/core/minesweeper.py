"""The Minesweeper outer algorithm (paper Algorithm 2).

The loop: ask the CDS for an *active* tuple t (one no known gap covers);
probe every relation around t with ``FindGap`` along all 2^p low/high index
chains; if t's projection is present in every relation, emit t and rule out
exactly t; otherwise insert every discovered gap as a constraint.  At least
one discovered gap always covers t (the charging argument in the proof of
Theorem 3.2), so the algorithm makes progress and terminates.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Optional, Sequence, Tuple

from repro.core.cds_arena import (
    make_cds,
    make_probe_strategy,
    resolve_cds_backend,
)
from repro.core.constraints import Constraint, WILDCARD
from repro.core.query import PreparedQuery
from repro.core.resilience import AdmittedQuery
from repro.storage.delta import DeltaRelation, StaleHandleError
from repro.storage.flat_trie import FlatTrieRelation
from repro.storage.relation import Relation
from repro.util.counters import OpCounters
from repro.util.sentinels import NEG_INF, POS_INF

LOW, HIGH = 0, 1  # the paper's  l / h  exploration symbols


class MinesweeperError(RuntimeError):
    """Raised when the engine detects it has stopped making progress."""


class Minesweeper:
    """Evaluate a prepared natural-join query with the Minesweeper algorithm.

    Parameters
    ----------
    query:
        A :class:`PreparedQuery` (relations indexed consistently with its
        GAO).
    strategy:
        ``"auto"`` (chain when the GAO is a nested elimination order, else
        general / shadow-chain), or explicitly ``"chain"`` / ``"general"``.
    memoize:
        Pass False to disable Algorithm 4/7 gap-inference memoization
        (ablation E12).
    merge_intervals:
        Pass False to store CDS intervals unmerged (ablation E13).
        The naive list exists only in the pointer tree, so this pins
        ``cds_backend="pointer"``.
    cds_backend:
        ``"arena"`` (flat array-backed ConstraintTree, the default) or
        ``"pointer"`` (per-node objects); ``None`` / ``"auto"`` resolve
        via :data:`repro.core.cds_arena.DEFAULT_CDS_BACKEND` (env
        override ``REPRO_CDS_BACKEND``).  Rows and operation counts are
        invariant in this knob — only wall-clock changes.
    """

    def __init__(
        self,
        query: PreparedQuery,
        strategy: str = "auto",
        memoize: bool = True,
        merge_intervals: bool = True,
        max_probes: Optional[int] = None,
        cds_backend: Optional[str] = None,
        max_ops: Optional[int] = None,
        admission: Optional["AdmittedQuery"] = None,
    ) -> None:
        self.query = query
        self.counters: OpCounters = query.counters
        self.cds_backend = (
            "pointer" if not merge_intervals else resolve_cds_backend(
                cds_backend
            )
        )
        self.cds = make_cds(
            query.n,
            counters=self.counters,
            merge_intervals=merge_intervals,
            cds_backend=self.cds_backend,
        )
        if strategy == "auto":
            strategy = "chain" if query.is_neo_gao() else "general"
        self.probe = make_probe_strategy(self.cds, strategy, memoize=memoize)
        self.strategy = strategy
        #: Optional observer called as
        #: ``gap_hook(relation, gao_position, chain, target, lo_idx, hi_idx)``
        #: for every FindGap the exploration performs (used by the
        #: certificate recorder, Proposition 2.5).
        self.gap_hook = None
        if max_probes is None:
            # Generous safety valve: Theorem 3.2 bounds non-output probes by
            # O(2^r |C|) and |C| <= r N; outputs are unbounded a priori and
            # are credited separately inside run().
            r = query.max_arity()
            m = len(query.relations)
            n = query.total_tuples()
            max_probes = 1000 + 64 * (2**r) * max(r, 1) * m * (n + 1)
        self.max_probes = max_probes
        #: Optional hard cap on tallied CDS work (interval_ops +
        #: constraints).  Unlike ``max_probes`` — a safety valve whose
        #: default is never meant to fire — this is an opt-in abort for
        #: callers that *measure* candidate configurations (the
        #: planner's GAO scoring): a pathological GAO can burn
        #: certificate-quadratic CDS work at a perfectly normal probe
        #: count.  Requires counting counters; with
        #: :class:`NullCounters` the tallies stay zero and the cap
        #: never fires.
        self.max_ops = max_ops
        #: Optional :class:`~repro.core.resilience.AdmittedQuery` — the
        #: serving layer's admission control.  Unlike ``max_ops`` (an
        #: internal measurement abort that raises
        #: :class:`MinesweeperError`), admission raises the *typed*
        #: taxonomy (``BudgetExceeded`` / ``QueryTimeout``) that
        #: surfaces through sessions, scripts, and the CLI.  Checked
        #: cooperatively once per probe; the deadline is only read
        #: every ``AdmittedQuery.DEADLINE_STRIDE`` ticks.
        self.admission = admission

    # ------------------------------------------------------------------

    def run(self) -> List[Tuple[int, ...]]:
        """Compute the join; returns output tuples in GAO order."""
        return list(self.iterate())

    def iterate(self):
        """Yield output tuples as they are discovered (GAO order).

        Because Minesweeper's work is certificate-bound rather than
        input-bound, early termination (``itertools.islice`` for top-k)
        stops the engine after work proportional to the part of the
        certificate it actually consumed — the Fagin-style use case the
        paper relates to in §6.3.
        """
        counters = self.counters
        n = self.query.n
        budget = self.max_probes
        ops_budget = self.max_ops
        admission = self.admission
        # Per-relation explorer closures, resolved once (see
        # _make_explorer): flat indexes get CSR-inlined variants with
        # their arrays captured, writable LSM relations are explored
        # through their merged FlatTrie view, and a gap_hook observer
        # forces the generic index-tuple formulation.
        explorers = [self._make_explorer(rel) for rel in self.query.relations]
        cds = self.cds
        insert_many = cds.insert_many
        insert_point = cds.insert_point
        get_probe_point = self.probe.get_probe_point
        while True:
            t = get_probe_point()
            if t is None:
                return
            counters.probes += 1
            if counters.probes - counters.output_tuples > budget:
                raise MinesweeperError(
                    f"probe budget {budget} exhausted at t={t}; "
                    "the CDS is not making progress"
                )
            if (
                ops_budget is not None
                and counters.interval_ops + counters.constraints
                > ops_budget
            ):
                raise MinesweeperError(
                    f"op budget {ops_budget} exhausted at t={t}"
                )
            if admission is not None:
                admission.tick(
                    counters.interval_ops + counters.constraints,
                    counters.output_tuples,
                )
            is_member = True
            discovered: List[Constraint] = []
            for explore in explorers:
                member, constraints = explore(t)
                if not member:
                    is_member = False
                if constraints:
                    discovered.extend(constraints)
            if is_member:
                counters.output_tuples += 1
                insert_point(t[: n - 1], t[n - 1])
                yield t
            else:
                # Insert order is the per-relation exploration order, as
                # before; the covering check is order-insensitive (it
                # reads only the constraint and t), so it runs after the
                # batch insert — which binds the CDS hot-path locals
                # once per probe instead of once per constraint.
                insert_many(discovered)
                if not any(c.satisfied_by(t) for c in discovered):
                    raise MinesweeperError(
                        f"no discovered gap covers probe point {t}; "
                        "exploration bug"
                    )

    # ------------------------------------------------------------------

    def _make_explorer(self, relation: Relation):
        """One-argument ``explore(t) -> (member, constraints)`` closure.

        Resolved once per run: flat (CSR) indexes of arity 1 and 2 get
        closures with the value/offset arrays captured (no per-probe
        attribute walks); other flat arities bind the generic CSR
        explorer; a writable :class:`~repro.storage.delta.DeltaRelation`
        is explored through its merged FlatTrie view — probe-for-probe
        what its handle API answers, with one generation check per
        explore preserving the mid-run mutation guarantee.  A
        ``gap_hook`` observer forces the generic index-tuple
        formulation.  Membership answers, constraint order, and FindGap
        tallies are identical across all of these forms.
        """
        from functools import partial

        positions = self.query.gao_positions[relation.name]
        index = relation.index
        if self.gap_hook is None and isinstance(index, DeltaRelation):
            view = index._view()
            flat = self._make_flat_closure(view, positions)
            if flat is not None:
                generation = index._generation

                def explore_delta(t, _flat=flat, _index=index,
                                  _generation=generation):
                    if _index._generation != _generation:
                        raise StaleHandleError(
                            f"relation {relation.name!r} mutated while an "
                            "engine was iterating; Minesweeper explores a "
                            "fixed snapshot (apply deltas after evaluation, "
                            "as LiveJoin does)"
                        )
                    return _flat(t)

                return explore_delta
        elif self.gap_hook is None and isinstance(index, FlatTrieRelation):
            flat = self._make_flat_closure(index, positions)
            if flat is not None:
                return flat
            return partial(self._explore_flat, relation, positions)
        return partial(self._explore, relation, positions)

    def _make_flat_closure(self, index: FlatTrieRelation, positions):
        """Arity-specialized closure over a FlatTrie's CSR arrays."""
        counters = self.counters
        count = index._count
        if index.arity == 1:
            vals0 = index._vals[0]
            p0 = positions[0]
            n0 = len(vals0)
            wild0 = (WILDCARD,) * p0
            trusted = Constraint.trusted

            def explore1(t):
                a = t[p0]
                if count:
                    counters.findgap += 1
                i = bisect_left(vals0, a, 0, n0)
                if i < n0 and vals0[i] == a:
                    return True, ()
                low = NEG_INF if i == 0 else vals0[i - 1]
                high = POS_INF if i == n0 else vals0[i]
                return False, (trusted(wild0, low, high),)

            return explore1
        if index.arity == 2:
            vals0 = index._vals[0]
            vals1 = index._vals[1]
            offs1 = index._offs[1]
            p0, p1 = positions
            n0 = len(vals0)
            wild0 = (WILDCARD,) * p0
            wild1 = [WILDCARD] * p1
            trusted = Constraint.trusted

            def explore2(t):
                """Arity-2 CSR exploration, arrays in cells.

                Mirrors the generic chain enumeration exactly: one root
                FindGap, then one FindGap per in-range {LOW, HIGH} child
                chain (the two chains coincide when the root value is
                present — both are still probed and tallied), with
                constraints emitted in the same v-order.
                """
                a = t[p0]
                b = t[p1]
                if count:
                    counters.findgap += 1
                i = bisect_left(vals0, a, 0, n0)
                if i < n0 and vals0[i] == a:
                    lo0 = hi0 = i + 1
                else:
                    lo0 = i
                    hi0 = i + 1
                member = lo0 == hi0
                # Level-1 records in v-order: (LOW,) then (HIGH,).
                records = []
                for coord in (lo0, hi0):
                    if 1 <= coord <= n0:
                        entry = coord - 1
                        s = offs1[entry]
                        e = offs1[entry + 1]
                        if count:
                            counters.findgap += 1
                        j = bisect_left(vals1, b, s, e)
                        if j < e and vals1[j] == b:
                            lo1 = hi1 = j - s + 1
                        else:
                            lo1 = j - s
                            hi1 = lo1 + 1
                        records.append((s, e, lo1, hi1, vals0[entry]))
                    else:
                        records.append(None)
                if member:
                    rec = records[1]  # the all-HIGH chain
                    if rec is None or rec[2] != rec[3]:
                        member = False
                constraints: List[Constraint] = []
                if lo0 != hi0:
                    low = NEG_INF if lo0 == 0 else vals0[lo0 - 1]
                    high = POS_INF if hi0 == n0 + 1 else vals0[hi0 - 1]
                    constraints.append(trusted(wild0, low, high))
                for rec in records:
                    if rec is None:
                        continue
                    s, e, lo1, hi1, parent_value = rec
                    if lo1 == hi1:
                        continue  # target value present: the gap is empty
                    low = NEG_INF if lo1 == 0 else vals1[s + lo1 - 1]
                    high = POS_INF if hi1 == e - s + 1 else vals1[s + hi1 - 1]
                    prefix = wild1.copy()
                    prefix[p0] = parent_value
                    constraints.append(trusted(tuple(prefix), low, high))
                return member, constraints

            return explore2
        return None

    def _explore(
        self,
        relation: Relation,
        gao_positions: Sequence[int],
        t: Tuple[int, ...],
    ) -> Tuple[bool, List[Constraint]]:
        """Probe ``relation`` around t (Algorithm 2 lines 4-10 and 15-21).

        Returns ``(is_member, constraints)`` where ``is_member`` says t's
        projection is a tuple of the relation, and ``constraints`` lists
        the (non-empty) gaps found along every in-range {l,h}-index chain.

        The 2^p chains for v in {LOW,HIGH}^p are kept as a frontier of
        *node handles* in v's lexicographic (itertools.product) order, so
        each FindGap / value access hits the index node directly instead
        of re-walking the trie from the root per operation.  The chain
        enumeration order, FindGap count, and emitted constraints are
        exactly those of the index-tuple formulation.
        """
        index = relation.index
        k = relation.arity
        gap_at = index.gap_at
        value_at = index.value_at
        child_at = index.child_at
        hook = self.gap_hook
        # Frontier entry per v-vector: (node handle, value chain, index
        # tuple) — handle None when some coordinate fell out of range;
        # the index tuple is tracked only for the gap_hook observer.
        dead = (None, None, None)
        frontier: List[Tuple] = [
            (index.root_handle(), (), () if hook is not None else None)
        ]
        # Per level, aligned with the frontier's v-order: None for dead
        # chains, else (handle, value chain, lo_idx, hi_idx).
        levels: List[List[Optional[Tuple]]] = []
        member = True
        for p in range(k):
            target = t[gao_positions[p]]
            records: List[Optional[Tuple]] = []
            next_frontier: List[Tuple] = []
            build_children = p + 1 < k
            for handle, val_chain, idx_chain in frontier:
                if handle is None:
                    records.append(None)
                    if build_children:
                        next_frontier.append(dead)
                        next_frontier.append(dead)
                    continue
                lo_idx, hi_idx = gap_at(handle, target)
                records.append((handle, val_chain, lo_idx, hi_idx))
                if hook is not None:
                    hook(
                        relation, gao_positions[p], idx_chain, target,
                        lo_idx, hi_idx,
                    )
                if not build_children:
                    continue
                fan = index.fanout_at(handle)
                for coord in (lo_idx, hi_idx):
                    if 1 <= coord <= fan:
                        next_frontier.append(
                            (
                                child_at(handle, coord),
                                val_chain + (value_at(handle, coord),),
                                idx_chain + (coord,)
                                if idx_chain is not None
                                else None,
                            )
                        )
                    else:
                        next_frontier.append(dead)
            levels.append(records)
            if member:
                # The all-HIGH chain is the last entry in v-order.
                rec = records[-1] if records else None
                if rec is None or rec[2] != rec[3]:
                    member = False
            frontier = next_frontier
        constraints: List[Constraint] = []
        for p, records in enumerate(levels):
            interval_gao_position = gao_positions[p]
            for rec in records:
                if rec is None:
                    continue
                handle, val_chain, lo_idx, hi_idx = rec
                if lo_idx == hi_idx:
                    continue  # target value present: the gap is empty
                low = value_at(handle, lo_idx)
                high = value_at(handle, hi_idx)
                prefix: List = [WILDCARD] * interval_gao_position
                for j, value in enumerate(val_chain):
                    prefix[gao_positions[j]] = value
                constraints.append(
                    Constraint.trusted(tuple(prefix), low, high)
                )
        return member, constraints

    def _explore_flat(
        self,
        relation: Relation,
        gao_positions: Sequence[int],
        t: Tuple[int, ...],
    ) -> Tuple[bool, List[Constraint]]:
        """:meth:`_explore` with the flat (CSR) trie access inlined.

        Chain enumeration order, FindGap tallies, and emitted constraints
        are identical to the generic version; only the per-operation
        dispatch is gone.  Node handles are (level, lo, hi) spans over
        the index's value arrays.  Relations of arity 1 and 2 (the
        dominant shapes) take the fully unrolled closures built by
        :meth:`_make_flat_closure`; this generic form serves arity >= 3.
        """
        index = relation.index
        k = relation.arity
        vals_levels = index._vals
        offs_levels = index._offs
        count = index._count
        counters = self.counters
        dead = (None, None)
        frontier: List[Tuple] = [((0, 0, len(vals_levels[0])), ())]
        levels: List[List[Optional[Tuple]]] = []
        member = True
        for p in range(k):
            target = t[gao_positions[p]]
            vals = vals_levels[p]
            records: List[Optional[Tuple]] = []
            next_frontier: List[Tuple] = []
            build_children = p + 1 < k
            if build_children:
                offs = offs_levels[p + 1]
            if count:
                for entry in frontier:
                    if entry[0] is not None:
                        counters.findgap += 1
            for handle, val_chain in frontier:
                if handle is None:
                    records.append(None)
                    if build_children:
                        next_frontier.append(dead)
                        next_frontier.append(dead)
                    continue
                _, lo, hi = handle
                i = bisect_left(vals, target, lo, hi)
                if i < hi and vals[i] == target:
                    lo_idx = hi_idx = i - lo + 1
                else:
                    lo_idx = i - lo
                    hi_idx = lo_idx + 1
                records.append((handle, val_chain, lo_idx, hi_idx))
                if not build_children:
                    continue
                fan = hi - lo
                for coord in (lo_idx, hi_idx):
                    if 1 <= coord <= fan:
                        entry_pos = lo + coord - 1
                        next_frontier.append(
                            (
                                (p + 1, offs[entry_pos], offs[entry_pos + 1]),
                                val_chain + (vals[entry_pos],),
                            )
                        )
                    else:
                        next_frontier.append(dead)
            levels.append(records)
            if member:
                rec = records[-1] if records else None
                if rec is None or rec[2] != rec[3]:
                    member = False
            frontier = next_frontier
        constraints: List[Constraint] = []
        for p, records in enumerate(levels):
            interval_gao_position = gao_positions[p]
            vals = vals_levels[p]
            for rec in records:
                if rec is None:
                    continue
                handle, val_chain, lo_idx, hi_idx = rec
                if lo_idx == hi_idx:
                    continue  # target value present: the gap is empty
                _, lo, hi = handle
                low = NEG_INF if lo_idx == 0 else vals[lo + lo_idx - 1]
                high = (
                    POS_INF if hi_idx == hi - lo + 1 else vals[lo + hi_idx - 1]
                )
                prefix: List = [WILDCARD] * interval_gao_position
                for j, value in enumerate(val_chain):
                    prefix[gao_positions[j]] = value
                constraints.append(
                    Constraint.trusted(tuple(prefix), low, high)
                )
        return member, constraints


def minesweeper_join(
    query: PreparedQuery, **kwargs
) -> List[Tuple[int, ...]]:
    """Run Minesweeper on a prepared query and return its output tuples."""
    return Minesweeper(query, **kwargs).run()
