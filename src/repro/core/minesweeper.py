"""The Minesweeper outer algorithm (paper Algorithm 2).

The loop: ask the CDS for an *active* tuple t (one no known gap covers);
probe every relation around t with ``FindGap`` along all 2^p low/high index
chains; if t's projection is present in every relation, emit t and rule out
exactly t; otherwise insert every discovered gap as a constraint.  At least
one discovered gap always covers t (the charging argument in the proof of
Theorem 3.2), so the algorithm makes progress and terminates.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Optional, Sequence, Tuple

from repro.core.cds import ConstraintTree
from repro.core.constraints import Constraint, WILDCARD
from repro.core.probe_acyclic import ChainProbeStrategy
from repro.core.probe_general import GeneralProbeStrategy
from repro.core.query import PreparedQuery
from repro.storage.flat_trie import FlatTrieRelation
from repro.storage.relation import Relation
from repro.util.counters import OpCounters
from repro.util.sentinels import NEG_INF, POS_INF

LOW, HIGH = 0, 1  # the paper's  l / h  exploration symbols


class MinesweeperError(RuntimeError):
    """Raised when the engine detects it has stopped making progress."""


class Minesweeper:
    """Evaluate a prepared natural-join query with the Minesweeper algorithm.

    Parameters
    ----------
    query:
        A :class:`PreparedQuery` (relations indexed consistently with its
        GAO).
    strategy:
        ``"auto"`` (chain when the GAO is a nested elimination order, else
        general / shadow-chain), or explicitly ``"chain"`` / ``"general"``.
    memoize:
        Pass False to disable Algorithm 4/7 gap-inference memoization
        (ablation E12).
    merge_intervals:
        Pass False to store CDS intervals unmerged (ablation E13).
    """

    def __init__(
        self,
        query: PreparedQuery,
        strategy: str = "auto",
        memoize: bool = True,
        merge_intervals: bool = True,
        max_probes: Optional[int] = None,
    ) -> None:
        self.query = query
        self.counters: OpCounters = query.counters
        self.cds = ConstraintTree(
            query.n, counters=self.counters, merge_intervals=merge_intervals
        )
        if strategy == "auto":
            strategy = "chain" if query.is_neo_gao() else "general"
        if strategy == "chain":
            self.probe = ChainProbeStrategy(self.cds, memoize=memoize)
        elif strategy == "general":
            self.probe = GeneralProbeStrategy(self.cds, memoize=memoize)
        else:
            raise ValueError(f"unknown strategy {strategy!r}")
        self.strategy = strategy
        #: Optional observer called as
        #: ``gap_hook(relation, gao_position, chain, target, lo_idx, hi_idx)``
        #: for every FindGap the exploration performs (used by the
        #: certificate recorder, Proposition 2.5).
        self.gap_hook = None
        if max_probes is None:
            # Generous safety valve: Theorem 3.2 bounds non-output probes by
            # O(2^r |C|) and |C| <= r N; outputs are unbounded a priori and
            # are credited separately inside run().
            r = query.max_arity()
            m = len(query.relations)
            n = query.total_tuples()
            max_probes = 1000 + 64 * (2**r) * max(r, 1) * m * (n + 1)
        self.max_probes = max_probes

    # ------------------------------------------------------------------

    def run(self) -> List[Tuple[int, ...]]:
        """Compute the join; returns output tuples in GAO order."""
        return list(self.iterate())

    def iterate(self):
        """Yield output tuples as they are discovered (GAO order).

        Because Minesweeper's work is certificate-bound rather than
        input-bound, early termination (``itertools.islice`` for top-k)
        stops the engine after work proportional to the part of the
        certificate it actually consumed — the Fagin-style use case the
        paper relates to in §6.3.
        """
        counters = self.counters
        positions = self.query.gao_positions
        n = self.query.n
        budget = self.max_probes
        # Per-relation explorer, resolved once: the flat backend gets the
        # CSR-inlined variant unless a gap_hook observer needs the
        # index-tuple chains of the generic one.
        explorers = []
        for rel in self.query.relations:
            if self.gap_hook is None and isinstance(
                rel.index, FlatTrieRelation
            ):
                explore = (
                    self._explore_flat2
                    if rel.arity == 2
                    else self._explore_flat
                )
            else:
                explore = self._explore
            explorers.append((rel, positions[rel.name], explore))
        while True:
            t = self.probe.get_probe_point()
            if t is None:
                return
            counters.probes += 1
            if counters.probes - counters.output_tuples > budget:
                raise MinesweeperError(
                    f"probe budget {budget} exhausted at t={t}; "
                    "the CDS is not making progress"
                )
            explorations = [
                explore(rel, pos, t) for rel, pos, explore in explorers
            ]
            if all(member for member, _ in explorations):
                counters.output_tuples += 1
                self.cds.insert(
                    Constraint(t[: n - 1], t[n - 1] - 1, t[n - 1] + 1)
                )
                yield t
            else:
                inserted_covering = False
                for _, constraints in explorations:
                    for constraint in constraints:
                        self.cds.insert(constraint)
                        if not inserted_covering and constraint.satisfied_by(t):
                            inserted_covering = True
                if not inserted_covering:
                    raise MinesweeperError(
                        f"no discovered gap covers probe point {t}; "
                        "exploration bug"
                    )

    # ------------------------------------------------------------------

    def _explore(
        self,
        relation: Relation,
        gao_positions: Sequence[int],
        t: Tuple[int, ...],
    ) -> Tuple[bool, List[Constraint]]:
        """Probe ``relation`` around t (Algorithm 2 lines 4-10 and 15-21).

        Returns ``(is_member, constraints)`` where ``is_member`` says t's
        projection is a tuple of the relation, and ``constraints`` lists
        the (non-empty) gaps found along every in-range {l,h}-index chain.

        The 2^p chains for v in {LOW,HIGH}^p are kept as a frontier of
        *node handles* in v's lexicographic (itertools.product) order, so
        each FindGap / value access hits the index node directly instead
        of re-walking the trie from the root per operation.  The chain
        enumeration order, FindGap count, and emitted constraints are
        exactly those of the index-tuple formulation.
        """
        index = relation.index
        k = relation.arity
        gap_at = index.gap_at
        value_at = index.value_at
        child_at = index.child_at
        hook = self.gap_hook
        # Frontier entry per v-vector: (node handle, value chain, index
        # tuple) — handle None when some coordinate fell out of range;
        # the index tuple is tracked only for the gap_hook observer.
        dead = (None, None, None)
        frontier: List[Tuple] = [
            (index.root_handle(), (), () if hook is not None else None)
        ]
        # Per level, aligned with the frontier's v-order: None for dead
        # chains, else (handle, value chain, lo_idx, hi_idx).
        levels: List[List[Optional[Tuple]]] = []
        member = True
        for p in range(k):
            target = t[gao_positions[p]]
            records: List[Optional[Tuple]] = []
            next_frontier: List[Tuple] = []
            build_children = p + 1 < k
            for handle, val_chain, idx_chain in frontier:
                if handle is None:
                    records.append(None)
                    if build_children:
                        next_frontier.append(dead)
                        next_frontier.append(dead)
                    continue
                lo_idx, hi_idx = gap_at(handle, target)
                records.append((handle, val_chain, lo_idx, hi_idx))
                if hook is not None:
                    hook(
                        relation, gao_positions[p], idx_chain, target,
                        lo_idx, hi_idx,
                    )
                if not build_children:
                    continue
                fan = index.fanout_at(handle)
                for coord in (lo_idx, hi_idx):
                    if 1 <= coord <= fan:
                        next_frontier.append(
                            (
                                child_at(handle, coord),
                                val_chain + (value_at(handle, coord),),
                                idx_chain + (coord,)
                                if idx_chain is not None
                                else None,
                            )
                        )
                    else:
                        next_frontier.append(dead)
            levels.append(records)
            if member:
                # The all-HIGH chain is the last entry in v-order.
                rec = records[-1] if records else None
                if rec is None or rec[2] != rec[3]:
                    member = False
            frontier = next_frontier
        constraints: List[Constraint] = []
        for p, records in enumerate(levels):
            interval_gao_position = gao_positions[p]
            for rec in records:
                if rec is None:
                    continue
                handle, val_chain, lo_idx, hi_idx = rec
                if lo_idx == hi_idx:
                    continue  # target value present: the gap is empty
                low = value_at(handle, lo_idx)
                high = value_at(handle, hi_idx)
                prefix: List = [WILDCARD] * interval_gao_position
                for j, value in enumerate(val_chain):
                    prefix[gao_positions[j]] = value
                constraints.append(
                    Constraint.trusted(tuple(prefix), low, high)
                )
        return member, constraints

    def _explore_flat2(
        self,
        relation: Relation,
        gao_positions: Sequence[int],
        t: Tuple[int, ...],
    ) -> Tuple[bool, List[Constraint]]:
        """:meth:`_explore_flat` unrolled for arity-2 relations.

        Mirrors the generic chain enumeration exactly: one root FindGap,
        then one FindGap per in-range {LOW, HIGH} child chain (the two
        chains coincide when the root value is present — both are still
        probed and tallied, as in the generic form), with constraints
        emitted in the same v-order.
        """
        index = relation.index
        counters = self.counters
        count = index._count
        vals0 = index._vals[0]
        vals1 = index._vals[1]
        offs1 = index._offs[1]
        p0, p1 = gao_positions
        a = t[p0]
        b = t[p1]
        n0 = len(vals0)
        if count:
            counters.findgap += 1
        i = bisect_left(vals0, a, 0, n0)
        if i < n0 and vals0[i] == a:
            lo0 = hi0 = i + 1
        else:
            lo0 = i
            hi0 = i + 1
        member = lo0 == hi0
        # Level-1 records in v-order: (LOW,) then (HIGH,).
        records = []
        for coord in (lo0, hi0):
            if 1 <= coord <= n0:
                entry = coord - 1
                s = offs1[entry]
                e = offs1[entry + 1]
                if count:
                    counters.findgap += 1
                j = bisect_left(vals1, b, s, e)
                if j < e and vals1[j] == b:
                    lo1 = hi1 = j - s + 1
                else:
                    lo1 = j - s
                    hi1 = lo1 + 1
                records.append((s, e, lo1, hi1, vals0[entry]))
            else:
                records.append(None)
        if member:
            rec = records[1]  # the all-HIGH chain
            if rec is None or rec[2] != rec[3]:
                member = False
        constraints: List[Constraint] = []
        if lo0 != hi0:
            low = NEG_INF if lo0 == 0 else vals0[lo0 - 1]
            high = POS_INF if hi0 == n0 + 1 else vals0[hi0 - 1]
            constraints.append(
                Constraint.trusted((WILDCARD,) * p0, low, high)
            )
        for rec in records:
            if rec is None:
                continue
            s, e, lo1, hi1, parent_value = rec
            if lo1 == hi1:
                continue  # target value present: the gap is empty
            low = NEG_INF if lo1 == 0 else vals1[s + lo1 - 1]
            high = POS_INF if hi1 == e - s + 1 else vals1[s + hi1 - 1]
            prefix: List = [WILDCARD] * p1
            prefix[p0] = parent_value
            constraints.append(Constraint.trusted(tuple(prefix), low, high))
        return member, constraints

    def _explore_flat(
        self,
        relation: Relation,
        gao_positions: Sequence[int],
        t: Tuple[int, ...],
    ) -> Tuple[bool, List[Constraint]]:
        """:meth:`_explore` with the flat (CSR) trie access inlined.

        Chain enumeration order, FindGap tallies, and emitted constraints
        are identical to the generic version; only the per-operation
        dispatch is gone.  Node handles are (level, lo, hi) spans over
        the index's value arrays.  Binary relations (edges — the dominant
        shape) take a fully unrolled variant.
        """
        index = relation.index
        k = relation.arity
        if k == 2:
            return self._explore_flat2(relation, gao_positions, t)
        vals_levels = index._vals
        offs_levels = index._offs
        count = index._count
        counters = self.counters
        dead = (None, None)
        frontier: List[Tuple] = [((0, 0, len(vals_levels[0])), ())]
        levels: List[List[Optional[Tuple]]] = []
        member = True
        for p in range(k):
            target = t[gao_positions[p]]
            vals = vals_levels[p]
            records: List[Optional[Tuple]] = []
            next_frontier: List[Tuple] = []
            build_children = p + 1 < k
            if build_children:
                offs = offs_levels[p + 1]
            if count:
                for entry in frontier:
                    if entry[0] is not None:
                        counters.findgap += 1
            for handle, val_chain in frontier:
                if handle is None:
                    records.append(None)
                    if build_children:
                        next_frontier.append(dead)
                        next_frontier.append(dead)
                    continue
                _, lo, hi = handle
                i = bisect_left(vals, target, lo, hi)
                if i < hi and vals[i] == target:
                    lo_idx = hi_idx = i - lo + 1
                else:
                    lo_idx = i - lo
                    hi_idx = lo_idx + 1
                records.append((handle, val_chain, lo_idx, hi_idx))
                if not build_children:
                    continue
                fan = hi - lo
                for coord in (lo_idx, hi_idx):
                    if 1 <= coord <= fan:
                        entry_pos = lo + coord - 1
                        next_frontier.append(
                            (
                                (p + 1, offs[entry_pos], offs[entry_pos + 1]),
                                val_chain + (vals[entry_pos],),
                            )
                        )
                    else:
                        next_frontier.append(dead)
            levels.append(records)
            if member:
                rec = records[-1] if records else None
                if rec is None or rec[2] != rec[3]:
                    member = False
            frontier = next_frontier
        constraints: List[Constraint] = []
        for p, records in enumerate(levels):
            interval_gao_position = gao_positions[p]
            vals = vals_levels[p]
            for rec in records:
                if rec is None:
                    continue
                handle, val_chain, lo_idx, hi_idx = rec
                if lo_idx == hi_idx:
                    continue  # target value present: the gap is empty
                _, lo, hi = handle
                low = NEG_INF if lo_idx == 0 else vals[lo + lo_idx - 1]
                high = (
                    POS_INF if hi_idx == hi - lo + 1 else vals[lo + hi_idx - 1]
                )
                prefix: List = [WILDCARD] * interval_gao_position
                for j, value in enumerate(val_chain):
                    prefix[gao_positions[j]] = value
                constraints.append(
                    Constraint.trusted(tuple(prefix), low, high)
                )
        return member, constraints


def minesweeper_join(
    query: PreparedQuery, **kwargs
) -> List[Tuple[int, ...]]:
    """Run Minesweeper on a prepared query and return its output tuples."""
    return Minesweeper(query, **kwargs).run()
