"""The bowtie query — Minesweeper end-to-end (paper Appendix I, Algorithm 9).

Q⋈⋈ = R(X) ⋈ S(X, Y) ⋈ T(Y) under GAO (X, Y).  Every GAO for this query is
a nested elimination order, and the CDS is a two-level ConstraintTree
(paper Figure 6): interval list on X at the root, plus per-``=x`` branches
and one ``*`` branch of Y-intervals.

Faithful to Algorithm 9, each iteration issues *five* FindGap calls —
gaps around x in R and S, around y in T, and around y under **both** the
lower and higher X-neighbours in S (the "anticipatory" exploration whose
purpose the appendix illustrates with the two-block instance: the naive
lexicographic gap can miss every certificate comparison).

This module exists for fidelity and tests; the generic engine handles the
bowtie too (they are compared in the test suite).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.storage.interval_list import IntervalList
from repro.storage.trie import TrieRelation
from repro.util.counters import OpCounters
from repro.util.sentinels import POS_INF, ExtendedValue


class BowtieMinesweeper:
    """Evaluate R(X) ⋈ S(X, Y) ⋈ T(Y) (Algorithm 9)."""

    def __init__(
        self,
        r_values: Sequence[int],
        s_pairs: Sequence[Tuple[int, int]],
        t_values: Sequence[int],
        counters: Optional[OpCounters] = None,
    ) -> None:
        self.counters = counters if counters is not None else OpCounters()
        self.r_index = TrieRelation(
            [(v,) for v in r_values], arity=1, counters=self.counters
        )
        self.s_index = TrieRelation(s_pairs, arity=2, counters=self.counters)
        self.t_index = TrieRelation(
            [(v,) for v in t_values], arity=1, counters=self.counters
        )
        self.i_x = IntervalList()  # ⟨(x1,x2), *⟩
        self.i_star_y = IntervalList()  # ⟨*, (y1,y2)⟩
        self.i_eq_x: Dict[int, IntervalList] = {}  # ⟨x, (y1,y2)⟩

    def _eq_x(self, x: int) -> IntervalList:
        lst = self.i_eq_x.get(x)
        if lst is None:
            lst = IntervalList()
            self.i_eq_x[x] = lst
        return lst

    # ------------------------------------------------------------------

    def get_probe_point(self) -> Optional[Tuple[int, int]]:
        """The two-level probe search with the =x / * ping-pong."""
        counters = self.counters
        while True:
            counters.interval_ops += 1
            x = self.i_x.next(-1)
            if x is POS_INF:
                return None
            branch = self.i_eq_x.get(x)
            y: ExtendedValue = -1
            while True:
                counters.interval_ops += 1
                if branch is not None:
                    y = branch.next(y)  # type: ignore[arg-type]
                if y is POS_INF:
                    break
                counters.interval_ops += 1
                y2 = self.i_star_y.next(y)  # type: ignore[arg-type]
                if y2 == y:
                    break
                # Memoize the *-branch knowledge on the =x branch so the
                # ping-pong is paid for once (the credit scheme of App. I).
                if branch is None:
                    branch = self._eq_x(x)  # type: ignore[arg-type]
                branch.insert(y - 1, y2)  # type: ignore[operator]
                y = y2
            if y is POS_INF:
                # The =x branch covers all of Y: fold into an X-interval.
                self.i_x.insert(x - 1, x + 1)  # type: ignore[operator]
                continue
            return (x, y)  # type: ignore[return-value]

    # ------------------------------------------------------------------

    def run(self, max_probes: Optional[int] = None) -> List[Tuple[int, int]]:
        counters = self.counters
        output: List[Tuple[int, int]] = []
        n = len(self.r_index) + len(self.s_index) + len(self.t_index)
        budget = max_probes if max_probes is not None else 1000 + 100 * (n + 1)
        while True:
            probe = self.get_probe_point()
            if probe is None:
                break
            counters.probes += 1
            if counters.probes - counters.output_tuples > budget:
                raise RuntimeError(f"bowtie probe budget exhausted at {probe}")
            x, y = probe
            if self._explore(x, y):
                output.append((x, y))
                counters.output_tuples += 1
                self._eq_x(x).insert(y - 1, y + 1)
                counters.interval_ops += 1
        return output

    # ------------------------------------------------------------------

    def _explore(self, x: int, y: int) -> bool:
        """Algorithm 9's five FindGap calls around (x, y); insert all gaps."""
        counters = self.counters
        member = True
        # R around x.
        r_lo, r_hi = self.r_index.find_gap((), x)
        if r_lo != r_hi:
            self.i_x.insert(
                self.r_index.value((r_lo,)), self.r_index.value((r_hi,))
            )
            counters.interval_ops += 1
            member = False
        # T around y.
        t_lo, t_hi = self.t_index.find_gap((), y)
        if t_lo != t_hi:
            self.i_star_y.insert(
                self.t_index.value((t_lo,)), self.t_index.value((t_hi,))
            )
            counters.interval_ops += 1
            member = False
        # S around x, then around y under both X-neighbours.
        s_lo, s_hi = self.s_index.find_gap((), x)
        if s_lo != s_hi:
            self.i_x.insert(
                self.s_index.value((s_lo,)), self.s_index.value((s_hi,))
            )
            counters.interval_ops += 1
            member = False
        fan = self.s_index.fanout(())
        for idx in {s_lo, s_hi}:
            if not 1 <= idx <= fan:
                continue
            y_lo, y_hi = self.s_index.find_gap((idx,), y)
            if y_lo == y_hi:
                continue
            x_value = self.s_index.value((idx,))
            assert isinstance(x_value, int)
            low = self.s_index.value((idx, y_lo))
            high = self.s_index.value((idx, y_hi))
            self._eq_x(x_value).insert(low, high)
            counters.interval_ops += 1
            if x_value == x:
                member = False
        return member


def bowtie_join(
    r_values: Sequence[int],
    s_pairs: Sequence[Tuple[int, int]],
    t_values: Sequence[int],
    counters: Optional[OpCounters] = None,
) -> List[Tuple[int, int]]:
    """Evaluate the bowtie query R(X) ⋈ S(X,Y) ⋈ T(Y)."""
    return BowtieMinesweeper(r_values, s_pairs, t_values, counters).run()
