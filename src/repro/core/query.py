"""Natural-join queries and global attribute orders (paper Section 2.1).

A :class:`Query` is a multiset of atoms (relations); its output is the
natural join ⋈_{R ∈ atoms(Q)} R.  Engines require the query to be *prepared*
for a GAO: every relation's column order must be the restriction of the GAO
to its attributes (that is what "indexed consistently with the GAO" means).
``Query.with_gao`` re-indexes relations to satisfy this.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.hypergraph.acyclicity import (
    is_alpha_acyclic,
    is_beta_acyclic,
    nested_elimination_order,
)
from repro.hypergraph.elimination import (
    elimination_width,
    is_nested_elimination_order,
    min_fill_order,
)
from repro.hypergraph.hypergraph import Hypergraph
from repro.storage.relation import BACKENDS, DEFAULT_BACKEND, Relation
from repro.util.counters import OpCounters


class Query:
    """A natural join over named relations."""

    def __init__(self, relations: Sequence[Relation]) -> None:
        if not relations:
            raise ValueError("a query needs at least one atom")
        names = [r.name for r in relations]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate relation names in {names}")
        self.relations: List[Relation] = list(relations)
        self._by_name: Dict[str, Relation] = {r.name: r for r in relations}

    def __repr__(self) -> str:
        atoms = " ⋈ ".join(
            f"{r.name}({','.join(r.attributes)})" for r in self.relations
        )
        return f"Query[{atoms}]"

    def relation(self, name: str) -> Relation:
        return self._by_name[name]

    def attributes(self) -> List[str]:
        """All attributes, in first-appearance order."""
        seen: List[str] = []
        for r in self.relations:
            for a in r.attributes:
                if a not in seen:
                    seen.append(a)
        return seen

    def hypergraph(self) -> Hypergraph:
        return Hypergraph({r.name: r.attributes for r in self.relations})

    def is_alpha_acyclic(self) -> bool:
        return is_alpha_acyclic(self.hypergraph())

    def is_beta_acyclic(self) -> bool:
        return is_beta_acyclic(self.hypergraph())

    def total_tuples(self) -> int:
        """N — the input size."""
        return sum(len(r) for r in self.relations)

    def max_arity(self) -> int:
        """r — the maximum arity over atoms."""
        return max(r.arity for r in self.relations)

    # ------------------------------------------------------------------
    # GAO handling
    # ------------------------------------------------------------------

    def is_gao_consistent(self, gao: Sequence[str]) -> bool:
        """True iff every relation's column order follows ``gao``."""
        if set(gao) != set(self.attributes()) or len(set(gao)) != len(gao):
            return False
        position = {a: i for i, a in enumerate(gao)}
        for r in self.relations:
            ranks = [position[a] for a in r.attributes]
            if ranks != sorted(ranks):
                return False
        return True

    def with_gao(
        self,
        gao: Sequence[str],
        counters: Optional[OpCounters] = None,
        backend: Optional[str] = None,
    ) -> "PreparedQuery":
        """Re-index every relation consistently with ``gao``.

        Column permutation rebuilds each trie; the result is a
        :class:`PreparedQuery` whose relations all share ``counters``.
        ``backend`` overrides every relation's storage backend (see
        :data:`repro.storage.relation.BACKENDS`); by default each
        relation keeps the backend it was constructed with.
        """
        gao = list(gao)
        if set(gao) != set(self.attributes()) or len(set(gao)) != len(gao):
            raise ValueError(
                f"GAO {gao} is not a permutation of {self.attributes()}"
            )
        shared = counters if counters is not None else OpCounters()
        position = {a: i for i, a in enumerate(gao)}
        prepared: List[Relation] = []

        def resolved(name: str) -> str:
            # "auto" and its resolution are the same index: don't rebuild.
            return DEFAULT_BACKEND if name == "auto" else name

        for r in self.relations:
            ordered_attrs = sorted(r.attributes, key=position.__getitem__)
            if tuple(ordered_attrs) == r.attributes and (
                backend is None or resolved(backend) == resolved(r.backend)
            ):
                r.rebind_counters(shared)
                prepared.append(r)
                continue
            column_of = {a: i for i, a in enumerate(r.attributes)}
            perm = [column_of[a] for a in ordered_attrs]
            rows = [tuple(row[i] for i in perm) for row in r.tuples()]
            if backend is not None:
                rebuilt_backend = backend
            elif r.backend in BACKENDS:
                rebuilt_backend = r.backend
            else:
                # A wrapped live index (Relation.from_index, e.g. a
                # DeltaRelation): its label is not a buildable backend,
                # so the re-indexed copy — a static snapshot of the
                # current contents — uses the default one.
                rebuilt_backend = DEFAULT_BACKEND
            prepared.append(
                Relation(
                    r.name,
                    ordered_attrs,
                    rows,
                    counters=shared,
                    backend=rebuilt_backend,
                )
            )
        return PreparedQuery(prepared, gao, shared)

    def choose_gao(self) -> Tuple[List[str], str]:
        """Pick a GAO per the paper: NEO if beta-acyclic, else min-fill."""
        h = self.hypergraph()
        neo = nested_elimination_order(h)
        if neo is not None:
            return neo, "neo"
        return min_fill_order(h), "minfill"


class PreparedQuery(Query):
    """A query whose relations are indexed consistently with a fixed GAO."""

    def __init__(
        self,
        relations: Sequence[Relation],
        gao: Sequence[str],
        counters: OpCounters,
    ) -> None:
        super().__init__(relations)
        self.gao: Tuple[str, ...] = tuple(gao)
        self.counters = counters
        if not self.is_gao_consistent(self.gao):
            raise ValueError(
                f"relations are not indexed consistently with GAO {gao}"
            )
        position = {a: i for i, a in enumerate(self.gao)}
        #: For each relation, the 0-based GAO positions of its attributes.
        self.gao_positions: Dict[str, List[int]] = {
            r.name: [position[a] for a in r.attributes]
            for r in self.relations
        }

    @property
    def n(self) -> int:
        """Number of attributes."""
        return len(self.gao)

    def is_neo_gao(self) -> bool:
        """True iff the GAO is a nested elimination order for the query."""
        return is_nested_elimination_order(self.hypergraph(), self.gao)

    def gao_elimination_width(self) -> int:
        return elimination_width(self.hypergraph(), self.gao)

    def project(self, name: str, row: Sequence[int]) -> Tuple[int, ...]:
        """Project a full GAO-ordered tuple onto relation ``name``."""
        return tuple(row[p] for p in self.gao_positions[name])


def naive_join(query: Query, gao: Optional[Sequence[str]] = None) -> List[Tuple[int, ...]]:
    """Ground-truth natural join by iterative hash expansion.

    Output tuples are ordered by ``gao`` (default: first-appearance order).
    Intended for correctness checking; complexity is not a goal.
    """
    order = list(gao) if gao is not None else query.attributes()
    position = {a: i for i, a in enumerate(order)}
    partial: List[Dict[str, int]] = [{}]
    for r in query.relations:
        new_partial: List[Dict[str, int]] = []
        rows = r.tuples()
        for binding in partial:
            for row in rows:
                merged = dict(binding)
                ok = True
                for attr, val in zip(r.attributes, row):
                    if attr in merged and merged[attr] != val:
                        ok = False
                        break
                    merged[attr] = val
                if ok:
                    new_partial.append(merged)
        partial = new_partial
    out = {
        tuple(binding[a] for a in order)
        for binding in partial
        if len(binding) == len(order)
    }
    return sorted(out)
