"""getProbePoint for general queries (paper Algorithms 6 and 7).

For a GAO that is not a nested elimination order, the principal filter G
at some depth is not a chain.  The paper's fix: linearize G (most
specialized first), build the *shadow chain* of suffix meets

    P̄(u_j) = ∧_{i >= j} P(u_i),

materialize the shadow patterns as CDS nodes, and run the chain algorithm
over the shadows — consulting, at each step, both the shadow node and the
original node it shadows (a two-element chain {ū ⪯ u}, Algorithm 7).

Inferred gaps are memoized at the *shadow* node.  (Algorithm 7 line 11
writes P(u); inserting at P̄(u) ⪯ P(u) is the sound reading — every
interval consulted lives at a pattern generalizing P̄(u), and the
credit-based analysis in Appendix G.2 charges shadow intervals — so that
is what we implement.)

When G happens to be a chain the shadows coincide with the originals and
this strategy reduces exactly to Algorithm 3 (tested against it).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.cds import CDSNode, ConstraintTree
from repro.core.constraints import (
    Constraint,
    Pattern,
    equality_count,
    last_equality_position,
    meet,
)
from repro.util.sentinels import POS_INF, ExtendedValue

ShadowEntry = Tuple[CDSNode, Pattern, CDSNode, Pattern]
# (shadow node, shadow pattern, original node, original pattern)


class GeneralProbeStrategy:
    """Algorithm 6: probe search via shadow chains."""

    name = "general"

    def __init__(self, cds: ConstraintTree, memoize: bool = True) -> None:
        self.cds = cds
        self.memoize = memoize

    def get_probe_point(self) -> Optional[Tuple[int, ...]]:
        cds = self.cds
        t: List[int] = []
        while len(t) < cds.n:
            filter_nodes = cds.filter_nodes(tuple(t))
            if not filter_nodes:
                t.append(-1)
                continue
            entries = self._build_shadow_chain(filter_nodes)
            value = self._next_shadow_chain_val(-1, 0, entries)
            if value is not POS_INF:
                t.append(value)  # type: ignore[arg-type]
                continue
            bottom_pattern = entries[0][1]  # meet of every filter pattern
            i0 = last_equality_position(bottom_pattern)
            if i0 == 0:
                return None
            cds.counters.backtracks += 1
            pinned = bottom_pattern[i0 - 1]
            assert isinstance(pinned, int)
            cds.insert(
                Constraint(bottom_pattern[: i0 - 1], pinned - 1, pinned + 1)
            )
            del t[i0 - 1 :]
        return tuple(t)

    def _build_shadow_chain(
        self, filter_nodes: List[Tuple[CDSNode, Pattern]]
    ) -> List[ShadowEntry]:
        """Linearize G and attach suffix-meet shadow nodes (Alg 6 lines 8-14).

        Sorting by descending equality count is a valid linearization: a
        strict specialization always has strictly more equalities.  Suffix
        meets exist because every pattern in G generalizes the same
        all-equality prefix.
        """
        ordered = sorted(filter_nodes, key=lambda e: -equality_count(e[1]))
        suffix_meet: Optional[Pattern] = None
        meets: List[Pattern] = []
        for _, pattern in reversed(ordered):
            if suffix_meet is None:
                suffix_meet = pattern
            else:
                merged = meet(suffix_meet, pattern)
                if merged is None:
                    raise AssertionError(
                        "filter patterns conflict; they cannot share a prefix"
                    )
                suffix_meet = merged
            meets.append(suffix_meet)
        meets.reverse()
        entries: List[ShadowEntry] = []
        for (node, pattern), shadow_pattern in zip(ordered, meets):
            if shadow_pattern == pattern:
                shadow_node = node
            else:
                shadow_node = self.cds.ensure_node(shadow_pattern)
            entries.append((shadow_node, shadow_pattern, node, pattern))
        return entries

    def _next_shadow_chain_val(
        self, x: int, j: int, entries: List[ShadowEntry]
    ) -> ExtendedValue:
        """Algorithm 7 over the shadow chain (bottom at index 0)."""
        shadow_node, _, orig_node, _ = entries[j]
        if j == len(entries) - 1:
            return self._next_two(x, shadow_node, orig_node)
        y: ExtendedValue = x
        while True:
            z = self._next_shadow_chain_val(y, j + 1, entries)  # type: ignore[arg-type]
            if z is POS_INF:
                y = POS_INF
                break
            y = self._next_two(z, shadow_node, orig_node)  # type: ignore[arg-type]
            if y == z or y is POS_INF:
                break
        if self.memoize:
            self.cds.insert_interval_at(shadow_node, x - 1, y)
        return y

    def _next_two(
        self, x: int, shadow_node: CDSNode, orig_node: CDSNode
    ) -> ExtendedValue:
        """nextChainVal over the two-node chain {ū ⪯ u} (Alg 7 lines 3, 9)."""
        counters = self.cds.counters
        if shadow_node is orig_node:
            counters.interval_ops += 1
            return orig_node.intervals.next(x)
        y: ExtendedValue = x
        while True:
            counters.interval_ops += 2
            z = orig_node.intervals.next(y)  # type: ignore[arg-type]
            if z is POS_INF:
                return POS_INF
            y = shadow_node.intervals.next(z)
            if y == z or y is POS_INF:
                return y
