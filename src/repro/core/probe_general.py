"""getProbePoint for general queries (paper Algorithms 6 and 7).

For a GAO that is not a nested elimination order, the principal filter G
at some depth is not a chain.  The paper's fix: linearize G (most
specialized first), build the *shadow chain* of suffix meets

    P̄(u_j) = ∧_{i >= j} P(u_i),

materialize the shadow patterns as CDS nodes, and run the chain algorithm
over the shadows — consulting, at each step, both the shadow node and the
original node it shadows (a two-element chain {ū ⪯ u}, Algorithm 7).

Inferred gaps are memoized at the *shadow* node.  (Algorithm 7 line 11
writes P(u); inserting at P̄(u) ⪯ P(u) is the sound reading — every
interval consulted lives at a pattern generalizing P̄(u), and the
credit-based analysis in Appendix G.2 charges shadow intervals — so that
is what we implement.)

When G happens to be a chain the shadows coincide with the originals and
this strategy reduces exactly to Algorithm 3 (tested against it).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Optional, Tuple

from repro.core.cds import CDSNode, ConstraintTree
from repro.storage.interval_list import ENC_POS, IntervalList
from repro.core.constraints import (
    Constraint,
    Pattern,
    equality_count,
    last_equality_position,
    meet,
)
from repro.util.sentinels import POS_INF, ExtendedValue

ShadowEntry = Tuple[
    CDSNode, Pattern, CDSNode, Pattern, Optional[object],
    Optional[list], Optional[list], Optional[list], Optional[list],
]
# (shadow node, shadow pattern, original node, original pattern,
#  [4] prebound intervals.next when shadow IS the original (degenerate
#      two-node chain), else None,
#  [5][6] the original's encoded endpoint arrays (degenerate IntervalList
#      case, and the non-degenerate all-IntervalList case),
#  [7][8] the shadow's encoded endpoint arrays (non-degenerate
#      all-IntervalList case only) — present iff the probe walk should
#      run the fully inlined two-list alternation).
# CDSNode.intervals is assigned once and mutated in place, so bound
# methods and arrays stay valid for the (version-cached) chain's life.


class GeneralProbeStrategy:
    """Algorithm 6: probe search via shadow chains."""

    name = "general"

    def __init__(self, cds: ConstraintTree, memoize: bool = True) -> None:
        self.cds = cds
        self.memoize = memoize
        # Hoisted once: every interval-op tally goes through this object.
        self.counters = cds.counters
        # prefix -> (cds.version, shadow chain or None when the filter is
        # empty).  cds.version bumps on node creation, eq-child deletion,
        # and a node's intervals turning non-empty, so a version match
        # guarantees the cached chain is still the principal filter.
        self._chains: dict = {}

    def _chain_for(self, prefix: Tuple[int, ...]) -> Optional[List[ShadowEntry]]:
        cds = self.cds
        cached = self._chains.get(prefix)
        if cached is not None and cached[0] == cds.version:
            return cached[1]
        filter_nodes = cds.filter_nodes(prefix)
        # Building shadow nodes may itself bump cds.version; record the
        # post-build version so the fresh chain is immediately reusable.
        entries = self._build_shadow_chain(filter_nodes) if filter_nodes else None
        self._chains[prefix] = (cds.version, entries)
        return entries

    def get_probe_point(self) -> Optional[Tuple[int, ...]]:
        cds = self.cds
        t: List[int] = []
        while len(t) < cds.n:
            entries = self._chain_for(tuple(t))
            if entries is None:
                t.append(-1)
                continue
            value = self._next_shadow_chain_val(-1, 0, entries)
            if value is not POS_INF:
                t.append(value)  # type: ignore[arg-type]
                continue
            bottom_pattern = entries[0][1]  # meet of every filter pattern
            i0 = last_equality_position(bottom_pattern)
            if i0 == 0:
                return None
            cds.counters.backtracks += 1
            pinned = bottom_pattern[i0 - 1]
            assert isinstance(pinned, int)
            cds.insert(
                Constraint(bottom_pattern[: i0 - 1], pinned - 1, pinned + 1)
            )
            del t[i0 - 1 :]
        return tuple(t)

    def _build_shadow_chain(
        self, filter_nodes: List[Tuple[CDSNode, Pattern]]
    ) -> List[ShadowEntry]:
        """Linearize G and attach suffix-meet shadow nodes (Alg 6 lines 8-14).

        Sorting by descending equality count is a valid linearization: a
        strict specialization always has strictly more equalities.  Suffix
        meets exist because every pattern in G generalizes the same
        all-equality prefix.
        """
        ordered = sorted(filter_nodes, key=lambda e: -equality_count(e[1]))
        suffix_meet: Optional[Pattern] = None
        meets: List[Pattern] = []
        for _, pattern in reversed(ordered):
            if suffix_meet is None:
                suffix_meet = pattern
            else:
                merged = meet(suffix_meet, pattern)
                if merged is None:
                    raise AssertionError(
                        "filter patterns conflict; they cannot share a prefix"
                    )
                suffix_meet = merged
            meets.append(suffix_meet)
        meets.reverse()
        entries: List[ShadowEntry] = []
        for (node, pattern), shadow_pattern in zip(ordered, meets):
            if shadow_pattern == pattern:
                shadow_node = node
            else:
                shadow_node = self.cds.ensure_node(shadow_pattern)
            o_iv = node.intervals
            s_iv = shadow_node.intervals
            if shadow_node is node:
                if type(o_iv) is IntervalList:
                    entries.append(
                        (
                            shadow_node, shadow_pattern, node, pattern,
                            o_iv.next, o_iv._lows, o_iv._highs, None, None,
                        )
                    )
                else:
                    entries.append(
                        (
                            shadow_node, shadow_pattern, node, pattern,
                            o_iv.next, None, None, None, None,
                        )
                    )
            elif type(o_iv) is IntervalList and type(s_iv) is IntervalList:
                entries.append(
                    (
                        shadow_node, shadow_pattern, node, pattern, None,
                        o_iv._lows, o_iv._highs, s_iv._lows, s_iv._highs,
                    )
                )
            else:
                entries.append(
                    (shadow_node, shadow_pattern, node, pattern, None,
                     None, None, None, None)
                )
        return entries

    def _next_shadow_chain_val(
        self, x: int, j: int, entries: List[ShadowEntry]
    ) -> ExtendedValue:
        """Algorithm 7 over the shadow chain (bottom at index 0).

        The recursion (each level repeatedly consults the level below it
        until a fixpoint) is run as an explicit walk: descents copy the
        sought value down to the leaf, unwinds apply each level's Next
        and either finish the level (memoizing its inferred gap, exactly
        like the recursive activation would) or re-descend.  Operation
        and memoization tallies are those of the recursive form.
        """
        counters = self.counters
        memoize = self.memoize
        insert_interval_at = self.cds.insert_interval_at
        last = len(entries) - 1
        top = j
        if top == last:
            entry = entries[top]
            fast_next = entry[4]
            if fast_next is not None:  # degenerate chain {u}: one Next
                counters.interval_ops += 1
                return fast_next(x)
            return self._next_two(x, entry[0], entry[2])
        # xs[j]: the value the active level-j activation was entered with
        # (the low end of the gap it memoizes on completion).
        xs: List[int] = [x] * (last + 1)
        cur: ExtendedValue = x
        z: ExtendedValue = x
        down = True
        while True:
            # Pick the level to step and its input value: descents step
            # the leaf with the carried-down value; unwinds step level j
            # with the child's result (unless that result is +inf, which
            # finishes level j immediately).
            if down:
                for level in range(j + 1, last + 1):
                    xs[level] = cur  # type: ignore[assignment]
                step_level = last
                v: ExtendedValue = cur
            elif z is not POS_INF:
                step_level = j
                v = z
            else:
                y: ExtendedValue = POS_INF
                entry = entries[j]
                if memoize:
                    insert_interval_at(entry[0], xs[j] - 1, y)
                if j == top:
                    return y
                z = y
                j -= 1
                continue
            entry = entries[step_level]
            # --- the chain step: Next over the entry's one or two lists.
            lows = entry[5]
            if lows is not None and entry[7] is None:
                # Degenerate {u}: intervals.next inlined (front + gallop).
                counters.interval_ops += 1
                n = len(lows)
                if not n or lows[0] >= v:
                    out = v
                else:
                    if n == 1 or lows[1] >= v:
                        high = entry[6][0]
                    else:
                        stride = 2
                        prev = 1
                        while stride < n and lows[stride] < v:
                            prev = stride
                            stride <<= 1
                        i = bisect_left(
                            lows, v, prev + 1,
                            stride if stride < n else n,
                        )
                        high = entry[6][i - 1]
                    if high <= v:
                        out = v
                    elif high >= ENC_POS:
                        out = POS_INF
                    else:
                        out = high
            elif lows is not None:
                # {ū ⪯ u} with both IntervalLists: _next_two inlined.
                o_highs = entry[6]
                s_lows = entry[7]
                s_highs = entry[8]
                no = len(lows)
                ns = len(s_lows)
                yy = v
                ops = 0
                oi = si = 0
                while True:
                    ops += 2
                    i = oi
                    if i < no and lows[i] < yy:
                        i += 1  # single-step advance: skip the gallop entirely
                    if i < no and lows[i] < yy:
                        prev = i
                        stride = 1
                        while i + stride < no and lows[i + stride] < yy:
                            prev = i + stride
                            stride <<= 1
                        cap = i + stride
                        i = bisect_left(
                            lows, yy, prev + 1, cap if cap < no else no
                        )
                    oi = i
                    if i:
                        high = o_highs[i - 1]
                        zz = high if high > yy else yy
                    else:
                        zz = yy
                    if zz >= ENC_POS:
                        out = POS_INF
                        break
                    i = si
                    if i < ns and s_lows[i] < zz:
                        i += 1  # single-step advance: skip the gallop entirely
                    if i < ns and s_lows[i] < zz:
                        prev = i
                        stride = 1
                        while i + stride < ns and s_lows[i + stride] < zz:
                            prev = i + stride
                            stride <<= 1
                        cap = i + stride
                        i = bisect_left(
                            s_lows, zz, prev + 1, cap if cap < ns else ns
                        )
                    si = i
                    if i:
                        high = s_highs[i - 1]
                        yy = high if high > zz else zz
                    else:
                        yy = zz
                    if yy == zz:
                        out = yy
                        break
                    if yy >= ENC_POS:
                        out = POS_INF
                        break
                counters.interval_ops += ops
            elif entry[4] is not None:
                counters.interval_ops += 1
                out = entry[4](v)
            else:
                out = self._next_two(v, entry[0], entry[2])  # type: ignore[arg-type]
            # --- route the step result.
            if down:
                z = out
                j = last - 1
                down = False
                continue
            y = out
            if y != z and y is not POS_INF:
                cur = y  # fixpoint not reached: re-descend below j
                down = True
                continue
            if memoize:
                insert_interval_at(entry[0], xs[j] - 1, y)
            if j == top:
                return y
            z = y
            j -= 1

    def _next_two(
        self, x: int, shadow_node: CDSNode, orig_node: CDSNode
    ) -> ExtendedValue:
        """nextChainVal over the two-node chain {ū ⪯ u} (Alg 7 lines 3, 9).

        The alternation is inlined over the two IntervalLists' encoded
        endpoint arrays with galloping cursors (the sought value only
        ascends within one call and neither list mutates mid-call), so
        each Next resumes where the previous one stopped.  Operation
        tallies match the call-per-Next formulation exactly.
        """
        counters = self.counters
        o_iv = orig_node.intervals
        if shadow_node is orig_node:
            counters.interval_ops += 1
            return o_iv.next(x)
        s_iv = shadow_node.intervals
        if type(o_iv) is not IntervalList or type(s_iv) is not IntervalList:
            # NaiveIntervalList ablation (E13): generic alternation.
            orig_next = o_iv.next
            shadow_next = s_iv.next
            y: ExtendedValue = x
            ops = 0
            while True:
                ops += 2
                z = orig_next(y)  # type: ignore[arg-type]
                if z is POS_INF:
                    counters.interval_ops += ops
                    return POS_INF
                y = shadow_next(z)
                if y == z or y is POS_INF:
                    counters.interval_ops += ops
                    return y
        o_lows, o_highs = o_iv._lows, o_iv._highs
        s_lows, s_highs = s_iv._lows, s_iv._highs
        no, ns = len(o_lows), len(s_lows)
        y = x
        ops = 0
        oi = si = 0  # galloping cursors: list[:cursor] is known < value
        while True:
            ops += 2
            # --- z = orig.next(y), resuming at cursor oi.
            i = oi
            if i < no and o_lows[i] < y:
                i += 1  # single-step advance: skip the gallop entirely
            if i < no and o_lows[i] < y:
                prev = i
                step = 1
                while i + step < no and o_lows[i + step] < y:
                    prev = i + step
                    step <<= 1
                top = i + step
                i = bisect_left(o_lows, y, prev + 1, top if top < no else no)
            oi = i
            if i:
                high = o_highs[i - 1]
                z = high if high > y else y
            else:
                z = y
            if z >= ENC_POS:
                counters.interval_ops += ops
                return POS_INF
            # --- y = shadow.next(z), resuming at cursor si.
            i = si
            if i < ns and s_lows[i] < z:
                i += 1  # single-step advance: skip the gallop entirely
            if i < ns and s_lows[i] < z:
                prev = i
                step = 1
                while i + step < ns and s_lows[i + step] < z:
                    prev = i + step
                    step <<= 1
                top = i + step
                i = bisect_left(s_lows, z, prev + 1, top if top < ns else ns)
            si = i
            if i:
                high = s_highs[i - 1]
                y = high if high > z else z
            else:
                y = z
            if y == z:
                counters.interval_ops += ops
                return y
            if y >= ENC_POS:
                counters.interval_ops += ops
                return POS_INF
