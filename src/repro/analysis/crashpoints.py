"""Checker: crashpoint registry parity (rule ``crashpoint-parity``).

``tests/test_faults.py`` proves recovery converges for every crash
point a *test run happens to traverse* — a call site a scenario never
reaches would drift silently.  This checker closes that gap
statically: the set of string literals passed to ``crashpoint("...")``
across ``src/`` must equal :data:`repro.testing.faults.CRASH_POINTS`
exactly, in both directions, and every call must use a literal (a
computed point name can't be audited or exhaustively crash-tested).

Both sides are read from source — the registry is parsed out of
``testing/faults.py``'s AST rather than imported — so the check works
on a checkout without importing the engine, and the fault-test suite
reuses :func:`scan_crashpoint_literals` /
:func:`registry_points` to pin the same three-way agreement at
runtime (registry == static call sites == observed hits).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.framework import (
    Checker,
    Finding,
    LintError,
    ModuleInfo,
    Project,
)

#: The function whose argument literals form the static call-site set.
CALL_NAME = "crashpoint"

#: Module that declares the registry (and therefore hosts the
#: ``crashpoint`` definition itself, which is not a call site).
REGISTRY_MODULE = "repro.testing.faults"
REGISTRY_NAME = "CRASH_POINTS"


def scan_crashpoint_literals(
    project: Project,
) -> Tuple[Dict[str, List[Tuple[str, int]]], List[Tuple[str, int]]]:
    """Collect ``crashpoint(<literal>)`` call sites across the project.

    Returns ``(literals, dynamic_calls)`` where ``literals`` maps each
    point name to its ``(path, line)`` call sites and ``dynamic_calls``
    lists calls whose argument is not a plain string literal.
    """
    literals: Dict[str, List[Tuple[str, int]]] = {}
    dynamic: List[Tuple[str, int]] = []
    for mod in project.modules:
        if mod.module == REGISTRY_MODULE:
            continue  # the definition site, not a call site
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None
            )
            if name != CALL_NAME:
                continue
            arg: Optional[ast.expr] = node.args[0] if node.args else None
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                literals.setdefault(arg.value, []).append(
                    (mod.rel, node.lineno)
                )
            else:
                dynamic.append((mod.rel, node.lineno))
    return literals, dynamic


def registry_points(project: Project) -> Tuple[Set[str], str, int]:
    """Parse ``CRASH_POINTS`` out of the registry module's AST.

    Returns ``(points, path, line)``; raises :class:`LintError` if the
    registry or its literal set cannot be found — the parity check is
    meaningless without it.
    """
    mod = project.module(REGISTRY_MODULE)
    if mod is None:
        raise LintError(f"registry module {REGISTRY_MODULE} not found")
    for node in ast.walk(mod.tree):
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == REGISTRY_NAME
            for t in node.targets
        ):
            continue
        points: Set[str] = set()
        for sub in ast.walk(node.value):
            if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                points.add(sub.value)
        if not points:
            raise LintError(
                f"{REGISTRY_NAME} in {mod.rel} holds no string literals"
            )
        return points, mod.rel, node.lineno
    raise LintError(f"{REGISTRY_NAME} assignment not found in {mod.rel}")


class CrashpointParityChecker(Checker):
    rule = "crashpoint-parity"
    description = (
        "crashpoint() literals and CRASH_POINTS must match exactly"
    )

    def finalize(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        literals, dynamic = scan_crashpoint_literals(project)
        registered, reg_path, reg_line = registry_points(project)
        for path, line in dynamic:
            findings.append(
                Finding(
                    rule=self.rule,
                    path=path,
                    line=line,
                    message="crashpoint() called with a non-literal point name",
                    hint=(
                        "pass a plain string literal so the fault suite "
                        "can enumerate every point statically"
                    ),
                )
            )
        for point in sorted(set(literals) - registered):
            path, line = literals[point][0]
            findings.append(
                Finding(
                    rule=self.rule,
                    path=path,
                    line=line,
                    message=(
                        f"crashpoint {point!r} is not registered in "
                        f"{REGISTRY_NAME}"
                    ),
                    hint=(
                        f"add it to {REGISTRY_NAME} in {reg_path} so the "
                        "fault suite crash-tests it"
                    ),
                )
            )
        for point in sorted(registered - set(literals)):
            findings.append(
                Finding(
                    rule=self.rule,
                    path=reg_path,
                    line=reg_line,
                    message=(
                        f"registered crashpoint {point!r} has no "
                        "crashpoint() call site in src/"
                    ),
                    hint=(
                        "thread a crashpoint() call through the code "
                        f"path or retire the entry from {REGISTRY_NAME}"
                    ),
                )
            )
        return findings
