"""Checker: log-before-mutate in Catalog mutation methods (rule
``wal-order``).

The durability contract (PR 6) is that recovery replays to exactly the
pre-op or post-op state of every catalog mutation.  That only holds if
each mutation method commits its record to the write-ahead log before
touching any in-memory state — the WAL append must *lexically
dominate* every storage/view mutation on the non-replay path (replay
itself is re-applying already-logged records and is recognized by the
``self._replaying`` guard inside the logging helpers).

The check is per method of :data:`MUTATION_METHODS` in
``dynamic/catalog.py``: the first WAL-append call (``_log_control`` /
``append_batch`` / ``append_control`` / ``append`` on the wal) must
appear on an earlier line than the first mutating statement — a store
into ``self._relations``/``self._views``, a bump of
``self.generation``/``self.batches_applied``, or a state-changing call
(``apply_delta``/``apply_effective``/``flush``/``compact``) on a
relation index.  A configured method that disappears flags too, so the
method list cannot rot silently when the catalog grows new mutations.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set, Tuple

from repro.analysis.framework import Checker, Finding, ModuleInfo

CATALOG_MODULE = "repro.dynamic.catalog"
CATALOG_CLASS = "Catalog"

#: Methods that must journal before mutating.
MUTATION_METHODS: Tuple[str, ...] = (
    "create_relation",
    "register_view",
    "apply_batch",
    "flush",
    "compact",
)

#: Calls that constitute the WAL append.
_WAL_CALLS: Set[str] = {
    "_log_control",
    "append_batch",
    "append_control",
    "append",
}

#: Attribute calls that mutate relation/view state.
_MUTATING_CALLS: Set[str] = {
    "apply_delta",
    "apply_effective",
    "flush",
    "compact",
}

#: ``self.<name>`` containers whose stores are mutations.
_STATE_FIELDS: Set[str] = {"_relations", "_views"}

#: ``self.<name>`` scalars whose writes are mutations.
_STATE_SCALARS: Set[str] = {"generation", "batches_applied"}


def _is_self_attr(node: ast.expr, names: Set[str]) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and node.attr in names
    )


def _first_wal_line(method: ast.FunctionDef) -> Optional[int]:
    best: Optional[int] = None
    for node in ast.walk(method):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _WAL_CALLS:
            if best is None or node.lineno < best:
                best = node.lineno
    return best


def _first_mutation(method: ast.FunctionDef) -> Optional[Tuple[int, str]]:
    best: Optional[Tuple[int, str]] = None

    def consider(lineno: int, what: str) -> None:
        nonlocal best
        if best is None or lineno < best[0]:
            best = (lineno, what)

    for node in ast.walk(method):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Subscript) and _is_self_attr(
                    target.value, _STATE_FIELDS
                ):
                    consider(
                        node.lineno, f"store into self.{target.value.attr}"
                    )
                elif _is_self_attr(target, _STATE_SCALARS):
                    consider(node.lineno, f"write to self.{target.attr}")
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATING_CALLS
                # self.flush()/self.compact() delegate and are checked
                # themselves; rel.index.flush() is the real mutation.
                and not (
                    isinstance(func.value, ast.Name)
                    and func.value.id == "self"
                )
            ):
                consider(
                    node.lineno,
                    f"call {ast.unparse(func)}()",
                )
    return best


class WalOrderChecker(Checker):
    rule = "wal-order"
    description = (
        "Catalog mutations must append to the WAL before mutating state"
    )

    def visit_module(self, mod: ModuleInfo) -> Iterable[Finding]:
        if mod.module != CATALOG_MODULE:
            return ()
        findings: List[Finding] = []
        catalog: Optional[ast.ClassDef] = None
        for node in mod.tree.body:
            if isinstance(node, ast.ClassDef) and node.name == CATALOG_CLASS:
                catalog = node
                break
        if catalog is None:
            findings.append(
                Finding(
                    rule=self.rule,
                    path=mod.rel,
                    line=1,
                    message=f"class {CATALOG_CLASS} not found",
                    hint="update repro.analysis.wal_order.CATALOG_CLASS",
                )
            )
            return findings
        methods = {
            node.name: node
            for node in catalog.body
            if isinstance(node, ast.FunctionDef)
        }
        for name in MUTATION_METHODS:
            method = methods.get(name)
            if method is None:
                findings.append(
                    Finding(
                        rule=self.rule,
                        path=mod.rel,
                        line=catalog.lineno,
                        message=(
                            f"configured mutation method "
                            f"{CATALOG_CLASS}.{name} not found"
                        ),
                        hint=(
                            "update repro.analysis.wal_order."
                            "MUTATION_METHODS when catalog mutations "
                            "are renamed"
                        ),
                    )
                )
                continue
            wal_line = _first_wal_line(method)
            mutation = _first_mutation(method)
            if mutation is None:
                continue
            mut_line, what = mutation
            if wal_line is None:
                findings.append(
                    Finding(
                        rule=self.rule,
                        path=mod.rel,
                        line=mut_line,
                        message=(
                            f"{CATALOG_CLASS}.{name} mutates state "
                            f"({what}) without any WAL append"
                        ),
                        hint=(
                            "journal through _log_control()/"
                            "wal.append_batch() before mutating"
                        ),
                    )
                )
            elif wal_line > mut_line:
                findings.append(
                    Finding(
                        rule=self.rule,
                        path=mod.rel,
                        line=mut_line,
                        message=(
                            f"{CATALOG_CLASS}.{name}: {what} on line "
                            f"{mut_line} precedes the WAL append on "
                            f"line {wal_line}"
                        ),
                        hint=(
                            "log-before-mutate: the WAL append must "
                            "lexically dominate every state mutation "
                            "so crash recovery lands on an op boundary"
                        ),
                    )
                )
        return findings
