"""Checker: determinism hygiene (rule ``determinism``).

Reproduction runs must be replayable: identical inputs and seeds must
produce identical rows, op counts, and logs.  Two classic leaks are
caught statically:

* **Module-global randomness** — calling ``random.<fn>()`` (or
  importing the module-level helpers) uses the interpreter-global RNG,
  whose state depends on import order and whatever ran before.  All
  randomness is threaded as ``random.Random(seed)`` instances (PR 5
  made ``search_gao``/``candidate_gaos`` take explicit rng/seed);
  constructing ``random.Random``/``random.SystemRandom`` is therefore
  fine, everything else on the module flags.

* **Wall-clock reads** — ``time.time()``/``perf_counter()``/
  ``datetime.now()`` and friends make behaviour (or artifacts) depend
  on the host clock.  They are the business of the observability layer
  (``obs``), the test/fault harness (``testing``), and the experiment
  harness (``experiments``); anywhere else a timing read must carry a
  ``# lint: disable=determinism`` pragma stating why it is
  reporting-only (e.g. a ``seconds`` field on a report object that no
  control flow reads).
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from repro.analysis.framework import Checker, Finding, ModuleInfo

#: Subpackages whose whole point is reading the clock.
CLOCK_ALLOWED_SUBPACKAGES = ("obs", "testing", "experiments")

#: random-module attributes that do NOT use the global RNG.
_RANDOM_OK: Set[str] = {"Random", "SystemRandom"}

#: Clock calls: module name -> forbidden attributes.
_CLOCK_CALLS = {
    "time": {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    },
    "datetime": {"now", "utcnow", "today"},
}


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, checker: "DeterminismChecker", mod: ModuleInfo,
                 clock_allowed: bool) -> None:
        self.checker = checker
        self.mod = mod
        self.clock_allowed = clock_allowed
        self.findings: List[Finding] = []

    def _flag(self, line: int, message: str, hint: str) -> None:
        self.findings.append(
            Finding(
                rule=self.checker.rule,
                path=self.mod.rel,
                line=line,
                message=message,
                hint=hint,
            )
        )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level == 0 and node.module == "random":
            for alias in node.names:
                if alias.name not in _RANDOM_OK:
                    self._flag(
                        node.lineno,
                        f"global-RNG import 'from random import "
                        f"{alias.name}'",
                        "thread a seeded random.Random instance instead "
                        "of the module-global RNG",
                    )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        value = node.value
        if isinstance(value, ast.Name):
            if value.id == "random" and node.attr not in _RANDOM_OK:
                self._flag(
                    node.lineno,
                    f"module-global RNG use 'random.{node.attr}'",
                    "thread a seeded random.Random instance instead of "
                    "the module-global RNG",
                )
            elif (
                not self.clock_allowed
                and node.attr in _CLOCK_CALLS.get(value.id, ())
            ):
                self._flag(
                    node.lineno,
                    f"wall-clock read '{value.id}.{node.attr}' outside "
                    f"{'/'.join(CLOCK_ALLOWED_SUBPACKAGES)}",
                    "move timing into the obs layer, or justify a "
                    "reporting-only read with "
                    "`# lint: disable=determinism -- <why>`",
                )
        self.generic_visit(node)


class DeterminismChecker(Checker):
    rule = "determinism"
    description = (
        "no global RNG; wall-clock reads only in obs/testing/experiments"
    )

    def visit_module(self, mod: ModuleInfo) -> Iterable[Finding]:
        clock_allowed = mod.top_subpackage() in CLOCK_ALLOWED_SUBPACKAGES
        visitor = _DeterminismVisitor(self, mod, clock_allowed)
        visitor.visit(mod.tree)
        return visitor.findings
