"""``repro lint`` driver: run every checker, ratchet, report.

Exit codes (consumed by ``make lint`` / CI):

* ``0`` — clean: no findings beyond the committed baseline, no stale
  baseline pins.
* ``1`` — findings: new violations, or baseline pins whose violation
  was fixed (ratchet the baseline down with ``--update-baseline``).
* ``2`` — internal error: unparsable source, broken checker, bad
  baseline file.  CI must treat this as red, not green.

The human report leads with a per-rule summary table so a CI failure
is readable without scrolling raw findings; ``--json`` emits the full
machine-consumable report instead.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import IO, List, Optional, Sequence

from repro.analysis.annotations import StrictAnnotationsChecker
from repro.analysis.counters import CounterDisciplineChecker
from repro.analysis.crashpoints import CrashpointParityChecker
from repro.analysis.determinism import DeterminismChecker
from repro.analysis.framework import (
    Checker,
    Finding,
    LintError,
    LintReport,
    Project,
    apply_baseline,
    load_baseline,
    load_project,
    run_checkers,
    write_baseline,
)
from repro.analysis.layering import LayeringChecker
from repro.analysis.payloads import MpPayloadChecker
from repro.analysis.wal_order import WalOrderChecker

#: Default baseline location, relative to the repo root (next to the
#: op-count baseline the drift gate uses).
BASELINE_REL = "benchmarks/baselines/lint_baseline.json"

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_INTERNAL = 2


def all_checkers() -> List[Checker]:
    """The rule suite, in stable registration order."""
    return [
        LayeringChecker(),
        CounterDisciplineChecker(),
        CrashpointParityChecker(),
        WalOrderChecker(),
        DeterminismChecker(),
        MpPayloadChecker(),
        StrictAnnotationsChecker(),
    ]


def lint_project(
    root: Path, baseline_path: Optional[Path] = None
) -> LintReport:
    """Run the full suite over ``<root>/src/repro`` and apply the
    baseline ratchet.  Raises :class:`LintError` on internal failure."""
    project = load_project(root)
    return lint_loaded(project, baseline_path)


def lint_loaded(
    project: Project, baseline_path: Optional[Path] = None
) -> LintReport:
    active, suppressed, stats = run_checkers(project, all_checkers())
    baseline = (
        load_baseline(baseline_path) if baseline_path is not None else {}
    )
    new, pinned, stale = apply_baseline(active, baseline, stats)
    return LintReport(
        findings=new,
        suppressed=suppressed,
        baselined=pinned,
        stale_baseline=stale,
        stats=stats,
    )


def _summary_table(report: LintReport) -> str:
    checkers = all_checkers()
    headers = ("rule", "findings", "baselined", "suppressed", "status")
    rows = []
    for checker in checkers:
        stat = report.stats.get(checker.rule)
        if stat is None:
            continue
        status = "FAIL" if stat.findings else "ok"
        rows.append(
            (
                checker.rule,
                str(stat.findings),
                str(stat.baselined),
                str(stat.suppressed),
                status,
            )
        )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows))
        for i in range(len(headers))
    ]
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
    lines = [fmt(headers), fmt(tuple("-" * w for w in widths))]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def render_report(report: LintReport, stream: IO[str]) -> None:
    print(_summary_table(report), file=stream)
    if report.findings:
        print(file=stream)
        for finding in report.findings:
            print(finding.render(), file=stream)
    if report.stale_baseline:
        print(file=stream)
        print(
            "stale baseline pins (the violation was fixed — ratchet "
            "down with `repro lint --update-baseline`):",
            file=stream,
        )
        for key in report.stale_baseline:
            print(f"  {key}", file=stream)
    total = len(report.findings)
    verdict = (
        "clean"
        if not report.failed
        else f"{total} finding(s), {len(report.stale_baseline)} stale pin(s)"
    )
    print(file=stream)
    print(f"repro lint: {verdict}", file=stream)


def report_to_json(report: LintReport) -> str:
    payload = {
        "findings": [f.to_json() for f in report.findings],
        "baselined": [f.to_json() for f in report.baselined],
        "suppressed": [f.to_json() for f in report.suppressed],
        "stale_baseline": list(report.stale_baseline),
        "summary": {
            rule: {
                "findings": stat.findings,
                "baselined": stat.baselined,
                "suppressed": stat.suppressed,
            }
            for rule, stat in report.stats.items()
        },
        "failed": report.failed,
    }
    return json.dumps(payload, indent=2)


def main(
    root: Path,
    as_json: bool = False,
    update_baseline: bool = False,
    baseline: Optional[Path] = None,
    stream: Optional[IO[str]] = None,
) -> int:
    """Entry point shared by ``repro lint`` and ``python -m``-style use."""
    out: IO[str] = stream if stream is not None else sys.stdout
    baseline_path = (
        baseline if baseline is not None else root / BASELINE_REL
    )
    try:
        if update_baseline:
            project = load_project(root)
            active, _, _ = run_checkers(project, all_checkers())
            write_baseline(baseline_path, active)
            print(
                f"baseline updated: {len(active)} finding(s) pinned in "
                f"{baseline_path}",
                file=out,
            )
            return EXIT_CLEAN
        report = lint_project(root, baseline_path)
    except LintError as exc:
        print(f"repro lint: internal error: {exc}", file=out)
        return EXIT_INTERNAL
    if as_json:
        print(report_to_json(report), file=out)
    else:
        render_report(report, out)
    return EXIT_FINDINGS if report.failed else EXIT_CLEAN
