"""Checker: the import-layering DAG (rule ``layering``).

The engine is layered; an import edge may only point *down*:

    util < storage < io < hypergraph < core < datasets
         < {certificates, baselines, dynamic} < parallel
         < lang < planner < serve < experiments < analysis < cli

Two subpackages sit outside the tower by design:

* ``obs`` — the observability bundle is importable from anywhere
  (engines thread spans/metrics through), but must itself import no
  engine module (``util`` only), so enabling tracing can never create
  an import cycle or change engine behaviour.
* ``testing`` — fault-injection crashpoints are threaded through
  production write paths, so any layer may import it; it may import
  nothing from the package at all.

Function-level (deferred) imports are checked too: a lazy upward
import is still an architectural edge, it just hides from module load
order.  The two deliberate ones (``core.engine`` / ``core.incremental``
pulling the sharded executor for the ``workers=`` escape hatch) carry
``# lint: disable=layering`` pragmas with their justification.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.framework import Checker, Finding, ModuleInfo

#: Subpackage -> rank.  An import edge ``A -> B`` (A imports B) is legal
#: iff ``rank(A) > rank(B)`` or both sides live in the same subpackage.
LAYER_RANKS: Dict[str, int] = {
    "util": 0,
    "storage": 10,
    "io": 15,
    "hypergraph": 18,
    "core": 20,
    "datasets": 25,
    "certificates": 30,
    "baselines": 30,
    "dynamic": 30,
    "parallel": 32,
    "lang": 40,
    "planner": 42,
    "serve": 50,
    "net": 52,
    "experiments": 55,
    "analysis": 58,
    "cli": 60,
    "__main__": 61,
}

#: Importable from every layer; the value lists what *they* may import.
FLOATING_LAYERS: Dict[str, Tuple[str, ...]] = {
    "obs": ("util",),
    "testing": (),
}


def _imported_modules(
    mod: ModuleInfo, package: str = "repro"
) -> List[Tuple[int, str]]:
    """Every intra-package import edge as ``(lineno, dotted-target)``.

    Both ``import repro.x`` / ``from repro.x import y`` and relative
    forms (``from ..storage import trie``) are resolved; imports of
    other distributions are ignored.
    """
    edges: List[Tuple[int, str]] = []
    is_pkg = mod.path.name == "__init__.py"
    parts = list(mod.package_parts)
    pkg_parts = parts if is_pkg else parts[:-1]
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == package or alias.name.startswith(
                    package + "."
                ):
                    edges.append((node.lineno, alias.name))
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                target = node.module or ""
            else:
                anchor = pkg_parts[: len(pkg_parts) - (node.level - 1)]
                if not anchor:
                    continue
                target = ".".join(
                    anchor + ([node.module] if node.module else [])
                )
            if target == package or target.startswith(package + "."):
                edges.append((node.lineno, target))
    return edges


def _layer_of(dotted: str) -> Optional[str]:
    parts = dotted.split(".")
    return parts[1] if len(parts) > 1 else None


class LayeringChecker(Checker):
    rule = "layering"
    description = "import edges must respect the layer DAG"

    def visit_module(self, mod: ModuleInfo) -> Iterable[Finding]:
        if mod.module == "repro":
            # The root __init__ is the public facade; it re-exports
            # every layer by design.
            return ()
        src_layer = mod.top_subpackage()
        findings: List[Finding] = []
        for lineno, target in _imported_modules(mod):
            dst_layer = _layer_of(target)
            if dst_layer is None or dst_layer == src_layer:
                continue
            finding = self._check_edge(mod, lineno, src_layer, dst_layer)
            if finding is not None:
                findings.append(finding)
        return findings

    def _check_edge(
        self, mod: ModuleInfo, lineno: int, src: str, dst: str
    ) -> Optional[Finding]:
        if dst in FLOATING_LAYERS:
            return None  # obs/testing are importable from anywhere
        if src in FLOATING_LAYERS:
            if dst in FLOATING_LAYERS[src]:
                return None
            return Finding(
                rule=self.rule,
                path=mod.rel,
                line=lineno,
                message=(
                    f"floating layer '{src}' may import only "
                    f"{list(FLOATING_LAYERS[src])}, not '{dst}'"
                ),
                hint=(
                    "obs/testing must stay importable from every layer; "
                    "importing engine modules back would create cycles"
                ),
            )
        src_rank = LAYER_RANKS.get(src)
        dst_rank = LAYER_RANKS.get(dst)
        if src_rank is None:
            return Finding(
                rule=self.rule,
                path=mod.rel,
                line=lineno,
                message=f"subpackage '{src}' is not in the layer map",
                hint="add it to repro.analysis.layering.LAYER_RANKS",
            )
        if dst_rank is None:
            return Finding(
                rule=self.rule,
                path=mod.rel,
                line=lineno,
                message=f"imported subpackage '{dst}' is not in the layer map",
                hint="add it to repro.analysis.layering.LAYER_RANKS",
            )
        if src_rank > dst_rank:
            return None
        return Finding(
            rule=self.rule,
            path=mod.rel,
            line=lineno,
            message=(
                f"layering back-edge: '{src}' (rank {src_rank}) imports "
                f"'{dst}' (rank {dst_rank})"
            ),
            hint=(
                "dependencies must point down the tower "
                "(util < storage < core < ... < cli); invert the "
                "dependency or justify a deferred import with a pragma"
            ),
        )
