"""Checker: counter discipline in hot-path modules (rule
``counter-discipline``).

The paper's experimental currency is operation counts, so every engine
threads an :class:`~repro.util.counters.OpCounters` /
:class:`~repro.util.counters.NullCounters` pair through its hot paths.
Two ways that discipline rots, both caught statically here in the
hot-path subpackages (``core``, ``storage``, ``baselines``):

1. **Tallying outside the protocol** — incrementing a counter-named
   field (``findgap``, ``probes``, ...) on a receiver that is not a
   counters object (e.g. ``self.findgap += 1`` on an engine).  Such a
   tally is invisible to ``snapshot()``/``merge()`` and silently
   splits the op-count ledger.  A receiver qualifies as a counters
   object when its final name component is ``counters`` (or ends with
   ``counters``: ``self.counters``, ``cds.counters``,
   ``view_counters[name]``).

2. **Unconditional tally-dict construction** — building a dict literal
   keyed by counter names outside an ``if <...>.enabled:`` guard.  The
   NullCounters path must stay allocation-free; op-shaped dicts on an
   unguarded path charge the counting-free fast path for work nobody
   reads (``snapshot`` methods are the sanctioned constructors and are
   exempt).
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from repro.analysis.framework import Checker, Finding, ModuleInfo

#: The OpCounters tally fields (see repro/util/counters.py).
COUNTER_FIELDS: Set[str] = {
    "findgap",
    "probes",
    "constraints",
    "comparisons",
    "interval_ops",
    "backtracks",
    "cache_hits",
    "cache_misses",
    "output_tuples",
}

#: Subpackages where the discipline is enforced.
HOT_SUBPACKAGES = ("core", "storage", "baselines")

#: A dict literal needs at least this many counter-named keys before it
#: counts as a tally dict (one shared key like "probes" in an unrelated
#: mapping should not trip the rule).
_TALLY_DICT_MIN_KEYS = 2


def _is_counters_receiver(node: ast.expr) -> bool:
    """Does this expression plausibly denote a counters object?"""
    if isinstance(node, ast.Name):
        return node.id.endswith("counters")
    if isinstance(node, ast.Attribute):
        return node.attr.endswith("counters")
    if isinstance(node, ast.Subscript):
        return _is_counters_receiver(node.value)
    if isinstance(node, ast.Call):
        # OpCounters() / o.fork() style factory results
        func = node.func
        if isinstance(func, ast.Name):
            return func.id.endswith("Counters")
        if isinstance(func, ast.Attribute):
            return func.attr.endswith("Counters")
    return False


def _mentions_enabled(node: ast.expr) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == "enabled":
            return True
        if isinstance(sub, ast.Name) and sub.id in ("enabled", "count"):
            return True
    return False


class _HotPathVisitor(ast.NodeVisitor):
    def __init__(self, checker: "CounterDisciplineChecker",
                 mod: ModuleInfo) -> None:
        self.checker = checker
        self.mod = mod
        self.findings: List[Finding] = []
        #: nesting depth of ``if <...>.enabled`` suites
        self._guard_depth = 0
        #: nesting depth of functions named ``snapshot``
        self._snapshot_depth = 0

    # -- guards --------------------------------------------------------

    def visit_If(self, node: ast.If) -> None:
        guarded = _mentions_enabled(node.test)
        if guarded:
            self._guard_depth += 1
        for child in node.body:
            self.visit(child)
        if guarded:
            self._guard_depth -= 1
        for child in node.orelse:
            self.visit(child)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        is_snapshot = node.name in ("snapshot", "stats", "to_json")
        if is_snapshot:
            self._snapshot_depth += 1
        self.generic_visit(node)
        if is_snapshot:
            self._snapshot_depth -= 1

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    # -- rule 1: counter-field stores off the protocol -----------------

    def _check_target(self, target: ast.expr, lineno: int) -> None:
        if not isinstance(target, ast.Attribute):
            return
        if target.attr not in COUNTER_FIELDS:
            return
        if _is_counters_receiver(target.value):
            return
        self.findings.append(
            Finding(
                rule=self.checker.rule,
                path=self.mod.rel,
                line=lineno,
                message=(
                    f"counter field '{target.attr}' mutated on "
                    f"'{ast.unparse(target.value)}', which is not a "
                    "counters object"
                ),
                hint=(
                    "tally through the threaded OpCounters/NullCounters "
                    "(receiver named *counters), or rename the field if "
                    "it is not an op tally"
                ),
            )
        )

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target, node.lineno)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target, node.lineno)
        self.generic_visit(node)

    # -- rule 2: unguarded tally-dict construction ---------------------

    def visit_Dict(self, node: ast.Dict) -> None:
        tally_keys = [
            key.value
            for key in node.keys
            if isinstance(key, ast.Constant)
            and isinstance(key.value, str)
            and key.value in COUNTER_FIELDS
        ]
        if (
            len(tally_keys) >= _TALLY_DICT_MIN_KEYS
            and self._guard_depth == 0
            and self._snapshot_depth == 0
        ):
            self.findings.append(
                Finding(
                    rule=self.checker.rule,
                    path=self.mod.rel,
                    line=node.lineno,
                    message=(
                        "tally dict "
                        f"({', '.join(sorted(tally_keys))}) built on an "
                        "unguarded path"
                    ),
                    hint=(
                        "hot-path modules construct op tallies only "
                        "under `if counters.enabled:` (or inside "
                        "snapshot()/stats()); the NullCounters path "
                        "must stay allocation-free"
                    ),
                )
            )
        self.generic_visit(node)


class CounterDisciplineChecker(Checker):
    rule = "counter-discipline"
    description = (
        "hot-path tallying must go through the OpCounters protocol"
    )

    def visit_module(self, mod: ModuleInfo) -> Iterable[Finding]:
        if mod.top_subpackage() not in HOT_SUBPACKAGES:
            return ()
        visitor = _HotPathVisitor(self, mod)
        visitor.visit(mod.tree)
        return visitor.findings
