"""Checker: pool-worker payload picklability (rule ``mp-payload``).

Sharded execution ships sliced relations (and everything hanging off
them) to ``multiprocessing`` workers by pickling — the design leans on
FlatTrie CSR arrays and arena int-arrays being plain data.  A field of
a known-unpicklable type added to any payload class turns every
``workers >= 1`` run into a runtime ``PicklingError`` that no unit
test with ``workers=0`` would catch.

The checker walks a configured registry of payload classes (the
transitive closure of what :func:`repro.parallel.executor.run_sharded`
puts in a shard payload) and flags ``self.<field> = <expr>``
assignments whose right-hand side is a known-unpicklable construction:
a ``lambda``, a generator expression, an ``open()`` call, or a
constructor reached through ``threading`` / ``multiprocessing`` /
``socket`` / ``weakref`` / ``mmap`` / ``ctypes``.  A registered class
that can no longer be found flags as well, so the registry cannot rot
when classes move or get renamed.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.framework import Checker, Finding, ModuleInfo, Project

#: module dotted name -> class names shipped (directly or as fields) to
#: pool workers.  See run_sharded(): payload = sliced Relations, whose
#: indexes are FlatTrie/Delta/Trie relations over interval pools and
#: counters; the arena CDS pickles into workers as plain int arrays.
PAYLOAD_CLASSES: Dict[str, Tuple[str, ...]] = {
    "repro.storage.relation": ("Relation",),
    "repro.storage.flat_trie": ("FlatTrieRelation",),
    "repro.storage.delta": ("DeltaRelation",),
    "repro.storage.trie": ("TrieRelation", "_TrieNode"),
    "repro.storage.interval_list": ("IntervalList",),
    "repro.storage.interval_pool": ("IntervalPool",),
    "repro.core.cds_arena": ("ArenaConstraintTree",),
    "repro.util.counters": ("OpCounters", "NullCounters"),
}

#: Modules whose attribute constructors never pickle.
_UNPICKLABLE_MODULES: Set[str] = {
    "threading",
    "multiprocessing",
    "socket",
    "weakref",
    "mmap",
    "ctypes",
}


def _unpicklable_reason(expr: ast.expr) -> Optional[str]:
    if isinstance(expr, ast.Lambda):
        return "a lambda"
    if isinstance(expr, ast.GeneratorExp):
        return "a generator expression"
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) and func.id == "open":
            return "an open file handle"
        if isinstance(func, ast.Attribute):
            root: ast.expr = func
            while isinstance(root, ast.Attribute):
                root = root.value
            if (
                isinstance(root, ast.Name)
                and root.id in _UNPICKLABLE_MODULES
            ):
                return f"a {root.id}.* object"
    return None


class MpPayloadChecker(Checker):
    rule = "mp-payload"
    description = (
        "pool-worker payload classes must not grow unpicklable fields"
    )

    def visit_module(self, mod: ModuleInfo) -> Iterable[Finding]:
        wanted = PAYLOAD_CLASSES.get(mod.module)
        if not wanted:
            return ()
        findings: List[Finding] = []
        classes = {
            node.name: node
            for node in mod.tree.body
            if isinstance(node, ast.ClassDef)
        }
        for name in wanted:
            cls = classes.get(name)
            if cls is None:
                findings.append(
                    Finding(
                        rule=self.rule,
                        path=mod.rel,
                        line=1,
                        message=(
                            f"registered payload class {name} not found "
                            f"in {mod.module}"
                        ),
                        hint=(
                            "update repro.analysis.payloads."
                            "PAYLOAD_CLASSES when payload classes move "
                            "or are renamed"
                        ),
                    )
                )
                continue
            findings.extend(self._check_class(mod, cls))
        return findings

    def _check_class(
        self, mod: ModuleInfo, cls: ast.ClassDef
    ) -> Iterable[Finding]:
        for node in ast.walk(cls):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                reason = _unpicklable_reason(node.value)
                if reason is not None:
                    yield Finding(
                        rule=self.rule,
                        path=mod.rel,
                        line=node.lineno,
                        message=(
                            f"{cls.name}.{target.attr} is assigned "
                            f"{reason}, which cannot be pickled to pool "
                            "workers"
                        ),
                        hint=(
                            "payload classes travel to multiprocessing "
                            "workers; keep fields plain data or exclude "
                            "them via __getstate__"
                        ),
                    )
