"""Checker: the strict-typing ratchet (rule ``strict-annotations``).

``mypy --strict`` runs in CI over a configured module set (see
``mypy.ini``), but mypy is an *optional* toolchain dependency — a bare
checkout must still be able to enforce the ratchet.  This checker is
the AST-level floor of the same contract, runnable anywhere: every
function in the strict set must annotate every parameter and its
return, and annotations must not use bare container generics
(``dict``/``list``/``set``/``tuple``/``frozenset`` with no element
type — the local mirror of mypy's ``disallow_any_generics``).

Growing the ratchet = adding a path to :data:`STRICT_SET` *and* the
``files`` line of ``mypy.ini``, then annotating until both passes are
clean.  Shrinking it is not a thing.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set, Tuple

from repro.analysis.framework import Checker, Finding, ModuleInfo

#: repo-relative path prefixes (posix) under the strict-typing ratchet.
#: Keep in lockstep with the ``files`` entry of mypy.ini.
STRICT_SET: Tuple[str, ...] = (
    "src/repro/util/",
    "src/repro/storage/",
    "src/repro/obs/",
    "src/repro/analysis/",
    "src/repro/parallel/",
    "src/repro/core/resilience.py",
    "src/repro/planner/cache.py",
    "src/repro/dynamic/wal.py",
    "src/repro/net/",
)

#: Builtin containers that need element types in annotations.
_BARE_GENERICS = {"dict", "list", "set", "tuple", "frozenset"}


def in_strict_set(rel: str) -> bool:
    return any(
        rel == entry or (entry.endswith("/") and rel.startswith(entry))
        for entry in STRICT_SET
    )


def _bare_generic_names(annotation: ast.expr) -> List[str]:
    """Bare ``dict``/``list``/... names used as a whole annotation or
    nested inside one (``Optional[dict]``), excluding subscripted uses
    (``Dict[str, int]`` / ``dict[str, int]``)."""
    bare: List[str] = []
    subscripted: Set[int] = set()
    for node in ast.walk(annotation):
        if isinstance(node, ast.Subscript) and isinstance(
            node.value, ast.Name
        ):
            subscripted.add(id(node.value))
    for node in ast.walk(annotation):
        if (
            isinstance(node, ast.Name)
            and node.id in _BARE_GENERICS
            and id(node) not in subscripted
        ):
            bare.append(node.id)
    return bare


class StrictAnnotationsChecker(Checker):
    rule = "strict-annotations"
    description = (
        "functions in the mypy-strict set must be fully annotated"
    )

    def visit_module(self, mod: ModuleInfo) -> Iterable[Finding]:
        if not in_strict_set(mod.rel):
            return ()
        findings: List[Finding] = []
        for node in ast.walk(mod.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            findings.extend(self._check_def(mod, node))
        return findings

    def _check_def(
        self,
        mod: ModuleInfo,
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
    ) -> Iterable[Finding]:
        args = node.args
        every = list(args.posonlyargs) + list(args.args) + list(
            args.kwonlyargs
        )
        missing = [
            a.arg
            for a in every
            if a.annotation is None and a.arg not in ("self", "cls")
        ]
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append("*" + args.vararg.arg)
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append("**" + args.kwarg.arg)
        if missing:
            yield Finding(
                rule=self.rule,
                path=mod.rel,
                line=node.lineno,
                message=(
                    f"{node.name}() has unannotated parameters: "
                    f"{', '.join(missing)}"
                ),
                hint="this module is in the strict-typing ratchet set",
            )
        if node.returns is None:
            yield Finding(
                rule=self.rule,
                path=mod.rel,
                line=node.lineno,
                message=f"{node.name}() has no return annotation",
                hint="this module is in the strict-typing ratchet set",
            )
        annotations = [a.annotation for a in every if a.annotation]
        if args.vararg is not None and args.vararg.annotation:
            annotations.append(args.vararg.annotation)
        if args.kwarg is not None and args.kwarg.annotation:
            annotations.append(args.kwarg.annotation)
        if node.returns is not None:
            annotations.append(node.returns)
        for annotation in annotations:
            for name in _bare_generic_names(annotation):
                yield Finding(
                    rule=self.rule,
                    path=mod.rel,
                    line=annotation.lineno,
                    message=(
                        f"{node.name}() uses bare generic '{name}' in "
                        "an annotation"
                    ),
                    hint=(
                        "spell the element types (e.g. Dict[str, int]) "
                        "— mirror of mypy --strict disallow_any_generics"
                    ),
                )
