"""Static analysis for the reproduction: ``repro lint``.

Machine-checks the invariants earlier PRs established informally —
import layering, counter discipline, crashpoint parity,
log-before-mutate WAL ordering, determinism hygiene, multiprocessing
payload picklability, and the strict-typing ratchet.  See
:mod:`repro.analysis.framework` for the checker/baseline machinery and
:mod:`repro.analysis.runner` for the CLI driver.
"""

from repro.analysis.framework import (
    Checker,
    Finding,
    LintError,
    LintReport,
    ModuleInfo,
    Project,
    apply_baseline,
    load_baseline,
    load_project,
    run_checkers,
    write_baseline,
)
from repro.analysis.runner import (
    BASELINE_REL,
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_INTERNAL,
    all_checkers,
    lint_loaded,
    lint_project,
    main,
    render_report,
    report_to_json,
)

__all__ = [
    "BASELINE_REL",
    "Checker",
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_INTERNAL",
    "Finding",
    "LintError",
    "LintReport",
    "ModuleInfo",
    "Project",
    "all_checkers",
    "apply_baseline",
    "lint_loaded",
    "lint_project",
    "load_baseline",
    "load_project",
    "main",
    "render_report",
    "report_to_json",
    "run_checkers",
    "write_baseline",
]
