"""Checker framework for ``repro lint``.

The linter is a small, dependency-free static-analysis harness: it
parses every module under ``src/repro`` once, hands the AST (plus
pragma annotations) to a set of :class:`Checker` objects, and collects
:class:`Finding` records.  Checkers encode *project invariants* — the
rules PRs 1–7 established informally in review (import layering,
counter discipline, crashpoint parity, log-before-mutate ordering,
determinism hygiene, multiprocessing-payload picklability, the
strict-typing ratchet) — so a change that silently breaks one fails CI
before any benchmark drifts.

Suppression and ratcheting:

* A finding on a line carrying ``# lint: disable=<rule>`` (comma list,
  with a trailing justification) is *suppressed* — reported in the
  summary's ``suppressed`` column, never fatal.
* ``baselines/lint_baseline.json`` pins grandfathered findings by a
  line-number-independent key.  New findings fail; *stale* baseline
  entries (the violation was fixed) also fail until the baseline is
  ratcheted down with ``repro lint --update-baseline`` — the pin count
  can only shrink.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

#: Matches ``# lint: disable=rule-a,rule-b -- justification`` anywhere
#: in a physical source line.  The rule list is mandatory; everything
#: after it is free-form justification text.
_PRAGMA_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,-]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    ``key`` deliberately omits the line number so baseline pins survive
    unrelated edits above the finding; the message disambiguates
    multiple findings in one file.
    """

    rule: str
    path: str  # repo-relative, posix-style
    line: int
    message: str
    hint: str = ""

    @property
    def key(self) -> str:
        return f"{self.rule}|{self.path}|{self.message}"

    def render(self) -> str:
        text = f"{self.path}:{self.line}: [{self.rule}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "hint": self.hint,
            "key": self.key,
        }


@dataclass
class ModuleInfo:
    """One parsed source module plus its pragma map."""

    path: Path  # absolute
    rel: str  # repo-relative posix path ("src/repro/core/engine.py")
    module: str  # dotted name ("repro.core.engine")
    source: str
    tree: ast.Module
    #: physical line -> rules disabled on that line
    pragmas: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    @property
    def package_parts(self) -> Tuple[str, ...]:
        """Dotted-name components below the top package."""
        return tuple(self.module.split("."))

    def top_subpackage(self) -> str:
        """The layer-granularity name: ``repro.core.engine`` -> ``core``,
        ``repro.io`` -> ``io``, ``repro`` -> ``""`` (the root)."""
        parts = self.package_parts
        return parts[1] if len(parts) > 1 else ""

    def suppressed(self, line: int, rule: str) -> bool:
        rules = self.pragmas.get(line)
        return rules is not None and (rule in rules or "all" in rules)


def _parse_pragmas(source: str) -> Dict[int, FrozenSet[str]]:
    pragmas: Dict[int, FrozenSet[str]] = {}
    for lineno, text in enumerate(source.splitlines(), 1):
        match = _PRAGMA_RE.search(text)
        if match:
            rules = frozenset(
                r.strip() for r in match.group(1).split(",") if r.strip()
            )
            if rules:
                pragmas[lineno] = rules
    return pragmas


class LintError(Exception):
    """Internal linter failure (unparsable file, broken checker) —
    distinct from findings: the CLI maps it to exit code 2."""


@dataclass
class Project:
    """Every parsed module under one source root."""

    root: Path  # repo root (baseline paths are relative to this)
    modules: List[ModuleInfo] = field(default_factory=list)

    def module(self, dotted: str) -> Optional[ModuleInfo]:
        for mod in self.modules:
            if mod.module == dotted:
                return mod
        return None


def load_project(
    root: Path, src_rel: str = "src", package: str = "repro"
) -> Project:
    """Parse every ``.py`` file of ``<root>/<src_rel>/<package>``.

    Files are visited in sorted order so every downstream report is
    deterministic.  A syntactically broken file raises
    :class:`LintError` — the linter cannot vouch for what it cannot
    parse.
    """
    root = root.resolve()
    pkg_dir = root / src_rel / package
    if not pkg_dir.is_dir():
        raise LintError(f"package directory not found: {pkg_dir}")
    project = Project(root=root)
    for path in sorted(pkg_dir.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        dotted = ".".join(
            path.relative_to(root / src_rel).with_suffix("").parts
        )
        if dotted.endswith(".__init__"):
            dotted = dotted[: -len(".__init__")]
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            raise LintError(f"cannot parse {rel}: {exc}") from exc
        project.modules.append(
            ModuleInfo(
                path=path,
                rel=rel,
                module=dotted,
                source=source,
                tree=tree,
                pragmas=_parse_pragmas(source),
            )
        )
    return project


class Checker:
    """Base class: one rule id, findings per module and/or cross-file.

    Subclasses override :meth:`visit_module` (called once per parsed
    module, any order-independent per-file logic) and/or
    :meth:`finalize` (called once after every module was visited, for
    cross-file rules such as crashpoint parity).
    """

    rule: str = ""
    description: str = ""

    def visit_module(self, mod: ModuleInfo) -> Iterable[Finding]:
        return ()

    def finalize(self, project: Project) -> Iterable[Finding]:
        return ()


@dataclass
class RuleStats:
    checked_modules: int = 0
    findings: int = 0
    suppressed: int = 0
    baselined: int = 0


@dataclass
class LintReport:
    """Everything one lint run produced, already deterministic."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    #: keys pinned by the baseline that matched current findings
    baselined: List[Finding] = field(default_factory=list)
    #: baseline keys with no current finding (must be ratcheted away)
    stale_baseline: List[str] = field(default_factory=list)
    stats: Dict[str, RuleStats] = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        return bool(self.findings or self.stale_baseline)


def _sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    return sorted(
        findings, key=lambda f: (f.path, f.line, f.rule, f.message)
    )


def run_checkers(
    project: Project, checkers: Sequence[Checker]
) -> Tuple[List[Finding], List[Finding], Dict[str, RuleStats]]:
    """Run every checker; split findings into (active, suppressed).

    Checker exceptions are internal errors, not findings: they escape
    as :class:`LintError` so the CLI exits 2 rather than green.
    """
    active: List[Finding] = []
    suppressed: List[Finding] = []
    stats: Dict[str, RuleStats] = {
        checker.rule: RuleStats() for checker in checkers
    }
    by_rel = {mod.rel: mod for mod in project.modules}
    for checker in checkers:
        produced: List[Finding] = []
        try:
            for mod in project.modules:
                stats[checker.rule].checked_modules += 1
                produced.extend(checker.visit_module(mod))
            produced.extend(checker.finalize(project))
        except LintError:
            raise
        except Exception as exc:  # pragma: no cover - checker bug path
            raise LintError(
                f"checker {checker.rule!r} crashed: {exc!r}"
            ) from exc
        for finding in produced:
            if finding.rule != checker.rule:
                raise LintError(
                    f"checker {checker.rule!r} emitted finding for "
                    f"rule {finding.rule!r}"
                )
            mod = by_rel.get(finding.path)
            if mod is not None and mod.suppressed(
                finding.line, finding.rule
            ):
                suppressed.append(finding)
                stats[checker.rule].suppressed += 1
            else:
                active.append(finding)
                stats[checker.rule].findings += 1
    return _sort_findings(active), _sort_findings(suppressed), stats


# ----------------------------------------------------------------------
# Baseline ratchet
# ----------------------------------------------------------------------


def load_baseline(path: Path) -> Dict[str, int]:
    """Read a baseline file: finding key -> pinned occurrence count."""
    if not path.exists():
        return {}
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise LintError(f"cannot read baseline {path}: {exc}") from exc
    pins = data.get("findings", {})
    if not isinstance(pins, dict) or not all(
        isinstance(k, str) and isinstance(v, int) for k, v in pins.items()
    ):
        raise LintError(f"malformed baseline {path}")
    return dict(pins)


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Pin the given findings (grouped by key) as the new baseline."""
    pins: Dict[str, int] = {}
    for finding in findings:
        pins[finding.key] = pins.get(finding.key, 0) + 1
    payload = {
        "comment": (
            "Grandfathered `repro lint` findings. The ratchet only goes "
            "down: fix a pinned finding, then run "
            "`repro lint --update-baseline`."
        ),
        "findings": {k: pins[k] for k in sorted(pins)},
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def apply_baseline(
    findings: Sequence[Finding],
    baseline: Dict[str, int],
    stats: Dict[str, RuleStats],
) -> Tuple[List[Finding], List[Finding], List[str]]:
    """Split findings into (new, baselined); report stale pins.

    Per key, the first ``pinned`` occurrences (in deterministic order)
    are baselined and the rest are new.  Pins exceeding the current
    occurrence count are stale: the violation was fixed, so the
    baseline must shrink — that keeps the ratchet one-way.
    """
    remaining = dict(baseline)
    new: List[Finding] = []
    pinned: List[Finding] = []
    for finding in findings:
        if remaining.get(finding.key, 0) > 0:
            remaining[finding.key] -= 1
            pinned.append(finding)
            if finding.rule in stats:
                stats[finding.rule].baselined += 1
                stats[finding.rule].findings -= 1
        else:
            new.append(finding)
    stale = sorted(k for k, count in remaining.items() if count > 0)
    return new, pinned, stale
