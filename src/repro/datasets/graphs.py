"""Synthetic graph generators (the Figure-2 data substitute).

The paper's Section 5.2 experiment uses three SNAP graphs (Orkut,
Epinions, LiveJournal).  Those are unavailable offline, so we generate
synthetic graphs with the two structural regimes that matter for the
experiment — heavy-tailed degree (social networks) and near-uniform
degree — at three size classes.  See DESIGN.md §2 for why this preserves
the Figure-2 behaviour (the measured quantity is the |C|/N ratio induced
by sparse unary filters, not any dataset-specific property).
"""

from __future__ import annotations

import random
from typing import List, Sequence, Set, Tuple

Edge = Tuple[int, int]


def uniform_graph(n_nodes: int, n_edges: int, seed: int = 0) -> List[Edge]:
    """An Erdős–Rényi-style directed graph with ``n_edges`` distinct edges."""
    if n_nodes < 2:
        raise ValueError("need at least two nodes")
    rng = random.Random(seed)
    edges: Set[Edge] = set()
    cap = n_nodes * (n_nodes - 1)
    target = min(n_edges, cap)
    while len(edges) < target:
        a = rng.randrange(n_nodes)
        b = rng.randrange(n_nodes)
        if a != b:
            edges.add((a, b))
    return sorted(edges)


def power_law_graph(n_nodes: int, n_edges: int, seed: int = 0) -> List[Edge]:
    """A preferential-attachment-style directed graph (heavy-tailed degree).

    Endpoints are sampled from a growing multiset of previously used
    endpoints (probability ∝ current degree), with uniform fallback —
    the standard cheap Barabási–Albert approximation.
    """
    if n_nodes < 2:
        raise ValueError("need at least two nodes")
    rng = random.Random(seed)
    edges: Set[Edge] = set()
    endpoint_pool: List[int] = []
    cap = n_nodes * (n_nodes - 1)
    target = min(n_edges, cap)
    attempts = 0
    while len(edges) < target and attempts < 50 * target + 100:
        attempts += 1
        if endpoint_pool and rng.random() < 0.7:
            a = rng.choice(endpoint_pool)
        else:
            a = rng.randrange(n_nodes)
        b = rng.randrange(n_nodes)
        if a == b:
            continue
        if (a, b) not in edges:
            edges.add((a, b))
            endpoint_pool.append(a)
            endpoint_pool.append(b)
    return sorted(edges)


def sample_vertices(
    edges: Sequence[Edge], probability: float, seed: int = 0
) -> List[int]:
    """Bernoulli-sample the vertex set of a graph (the §5.2 R_i relations).

    Every vertex is kept independently with ``probability``; at least one
    vertex is always returned so relations stay non-empty.
    """
    rng = random.Random(seed)
    vertices = sorted({v for e in edges for v in e})
    chosen = [v for v in vertices if rng.random() < probability]
    if not chosen:
        chosen = [vertices[0]]
    return chosen


def undirected_closure(edges: Sequence[Edge]) -> List[Edge]:
    """Both orientations of every edge (the Prop 5.2 R_{i,j} convention)."""
    out: Set[Edge] = set()
    for a, b in edges:
        out.add((a, b))
        out.add((b, a))
    return sorted(out)
