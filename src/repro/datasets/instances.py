"""The paper's instance families, with their analytic certificate sizes.

Every example and lower-bound construction in the paper that we benchmark
is generated here, parameterized by scale, together with what the paper
says about it (optimal certificate size, expected output) so tests and
benchmarks can assert the *shape* of each claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.query import Query
from repro.storage.relation import Relation

Row = Tuple[int, ...]


@dataclass
class PaperInstance:
    """A generated instance plus the paper's analytic facts about it."""

    name: str
    query: Query
    gao: List[str]
    #: Asymptotic optimal-certificate size for this GAO (paper-stated).
    certificate_size: int
    #: Expected number of output tuples (None = unspecified).
    output_size: Optional[int] = None
    notes: str = ""
    metadata: Dict[str, int] = field(default_factory=dict)


# ----------------------------------------------------------------------
# Section 2 / Appendix B examples
# ----------------------------------------------------------------------


def example_2_1(n: int) -> PaperInstance:
    """Example 2.1: R(A) ⋈ T(A, B) with two certified groups of outputs."""
    r_rows = [(i,) for i in range(1, n + 1)]
    t_rows = [(1, 2 * i) for i in range(1, n + 1)] + [
        (2, 3 * i) for i in range(1, n + 1)
    ]
    query = Query(
        [
            Relation("R", ["A"], r_rows),
            Relation("T", ["A", "B"], t_rows),
        ]
    )
    return PaperInstance(
        name="example_2_1",
        query=query,
        gao=["A", "B"],
        certificate_size=2,
        output_size=2 * n,
        notes="{R[1]=T[1], R[2]=T[2]} certifies 2n outputs",
    )


def constant_certificate_empty(n: int) -> PaperInstance:
    """Example B.1: disjoint ranges; O(1) certificate, empty output."""
    query = Query(
        [
            Relation("R", ["A"], [(i,) for i in range(1, n + 1)]),
            Relation(
                "S", ["A", "B"], [(n + 1, i + n) for i in range(1, n + 1)]
            ),
        ]
    )
    return PaperInstance(
        name="B1_constant_empty",
        query=query,
        gao=["A", "B"],
        certificate_size=1,
        output_size=0,
        notes="{R[N] < S[1]} certifies emptiness",
    )


def constant_certificate_large_output(n: int) -> PaperInstance:
    """Example B.2: |C| = 1 while Z = n (certificate ≪ output)."""
    query = Query(
        [
            Relation("R", ["A"], [(i,) for i in range(1, n + 1)]),
            Relation("S", ["A", "B"], [(n, 10 * i) for i in range(1, n + 1)]),
        ]
    )
    return PaperInstance(
        name="B2_constant_large_output",
        query=query,
        gao=["A", "B"],
        certificate_size=1,
        output_size=n,
        notes="{R[N] = S[1]} certifies n outputs",
    )


def interleaved_parity(n: int, gao: Sequence[str] = ("A", "B", "C")) -> PaperInstance:
    """Examples B.3 / B.4: R(A,C) ⋈ S(B,C) with even/odd C columns.

    Under GAO (A, B, C) the optimal certificate is Θ(N²) = Θ(n²) (needs
    same-relation equalities); under (C, A, B) — a nested elimination
    order — it is Θ(n).
    """
    r_rows = [(a, 2 * k) for a in range(1, n + 1) for k in range(1, n + 1)]
    s_rows = [
        (b, 2 * k - 1) for b in range(1, n + 1) for k in range(1, n + 1)
    ]
    query = Query(
        [
            Relation("R", ["A", "C"], r_rows),
            Relation("S", ["B", "C"], s_rows),
        ]
    )
    gao = list(gao)
    cert = 2 * n * (n - 1) + 2 * n if gao[0] != "C" else 2 * n
    return PaperInstance(
        name="B3_B4_interleaved_parity",
        query=query,
        gao=gao,
        certificate_size=cert,
        output_size=0,
        notes="GAO flip changes |C| from Θ(n²) to Θ(n)",
        metadata={"n": n},
    )


def private_attribute_flip(n: int, gao: Sequence[str] = ("A", "B")) -> PaperInstance:
    """Example B.6: R(A,B) ⋈ S(A,B); |C| is O(1) for (A,B), Ω(n) for (B,A)."""
    query = Query(
        [
            Relation("R", ["A", "B"], [(i, i) for i in range(1, n + 1)]),
            Relation("S", ["A", "B"], [(n + i, i) for i in range(1, n + 1)]),
        ]
    )
    gao = list(gao)
    cert = 1 if gao == ["A", "B"] else n
    return PaperInstance(
        name="B6_gao_data_dependence",
        query=query,
        gao=gao,
        certificate_size=cert,
        output_size=0,
        notes="R[N] < S[1] under (A,B); needs n comparisons under (B,A)",
    )


def neo_with_large_certificate(n: int, gao: Sequence[str] = ("A", "B", "C")) -> PaperInstance:
    """Example B.7: a nested elimination order can have the *larger* |C|.

    Q = R(A,B,C) ⋈ S(A,C) ⋈ T(B,C) is beta-acyclic with NEO (C,A,B); but
    on this data the non-NEO order (A,B,C) admits a one-comparison
    emptiness certificate (R's A-values all precede S's), while (C,A,B)
    needs Ω(n) comparisons.  The GAO choice is data-dependent — exactly
    why :func:`repro.core.gao_search.search_gao` measures instead of
    relying on structure alone.
    """
    query = Query(
        [
            Relation("R", ["A", "B", "C"], [(i, i, i) for i in range(1, n + 1)]),
            Relation("S", ["A", "C"], [(n + i, i) for i in range(1, n + 1)]),
            Relation("T", ["B", "C"], [(i, i) for i in range(1, n + 1)]),
        ]
    )
    gao = list(gao)
    cert = 1 if gao[0] == "A" else n
    return PaperInstance(
        name="B7_neo_large_certificate",
        query=query,
        gao=gao,
        certificate_size=cert,
        output_size=0,
        notes="|C(A,B,C)| = 1 while |C(C,A,B)| = Ω(n) despite the NEO",
    )


# ----------------------------------------------------------------------
# Appendix J: the worst-case-optimal counterexample family
# ----------------------------------------------------------------------


def appendix_j_path(m: int, block: int) -> PaperInstance:
    """The chunked path query Q = ⋈_{i=1..m} R_i(A_i, A_{i+1}).

    Each relation has m blocks of size ``block``²; relation i keeps only a
    single tuple in its own block i and drops block i-1 entirely, hiding
    an O(m·block) emptiness certificate that Yannakakis / LFTJ / NPRR all
    miss (they do Ω(m·block²) work).  Output is empty.
    """
    if m < 3:
        raise ValueError("the family needs m >= 3 relations")
    relations: List[Relation] = []
    for i in range(1, m + 1):
        rows: List[Row] = []
        for j in range(1, m + 1):
            base = (j - 1) * block
            if j == i:
                rows.append((base + 1, base + 1))
            elif j == (i - 1) or (i == 1 and j == m):
                continue  # the empty chunk
            else:
                rows.extend(
                    (base + x, base + y)
                    for x in range(2, block + 1)
                    for y in range(2, block + 1)
                )
        relations.append(
            Relation(f"R{i}", [f"A{i}", f"A{i + 1}"], rows)
        )
    query = Query(relations)
    gao = [f"A{i}" for i in range(1, m + 2)]
    return PaperInstance(
        name="appendixJ_path",
        query=query,
        gao=gao,
        certificate_size=m * block,
        output_size=0,
        notes="Minesweeper Õ(m·M); Yannakakis/LFTJ/NPRR Ω(m·M²)",
        metadata={"m": m, "block": block},
    )


# ----------------------------------------------------------------------
# Proposition 5.3: the treewidth-w lower-bound family
# ----------------------------------------------------------------------


def prop_5_3(w: int, m: int) -> PaperInstance:
    """Q_w = (⋈_{i<j} R_ij(v_i, v_j)) ⋈ U(v_1..v_{w+1}) hard instance.

    |C| = O(w·m) yet Minesweeper explores Ω(m^w) prefixes under any GAO.
    The U relation is the full grid [m]^{w+1}; R_{i,w+1} pins the last
    attribute to 1 for i < w and to 2 for i = w, so the output is empty.
    """
    k = w + 1
    attrs = [f"v{i}" for i in range(1, k + 1)]
    relations: List[Relation] = []
    grid2 = [(x, y) for x in range(1, m + 1) for y in range(1, m + 1)]
    for i in range(1, k + 1):
        for j in range(i + 1, k + 1):
            name = f"R{i}_{j}"
            if j < k:
                rows = grid2
            elif i < w:
                rows = [(x, 1) for x in range(1, m + 1)]
            else:
                rows = [(x, 2) for x in range(1, m + 1)]
            relations.append(Relation(name, [f"v{i}", f"v{j}"], rows))

    u_rows = _grid(m, k)
    relations.append(Relation("U", attrs, u_rows))
    query = Query(relations)
    return PaperInstance(
        name="prop_5_3",
        query=query,
        gao=attrs,
        certificate_size=w * m,
        output_size=0,
        notes="Minesweeper Ω(m^w) on a treewidth-w alpha-acyclic query",
        metadata={"w": w, "m": m},
    )


def _grid(m: int, k: int) -> List[Row]:
    rows: List[Row] = [()]
    for _ in range(k):
        rows = [r + (x,) for r in rows for x in range(1, m + 1)]
    return rows


# ----------------------------------------------------------------------
# Proposition 2.8 / Appendix F.3: beta-cyclic hardness (4-cycle query)
# ----------------------------------------------------------------------


def beta_cyclic_cycle(c: int, n: int) -> PaperInstance:
    """The c-cycle query ⋈ R_i(A_i, A_{i+1 mod c}) with parity interleaving.

    Simulates the role of the 3SUM-hard instances of Prop 2.8 / App. F.3:
    the first c-2 hops are complete bipartite (every prefix is alive), the
    last forward hop admits only even A_{c-1} values, and the closing
    relation only odd ones — so the join is empty, but certifying each
    "live" (a_0, a_{c-2}) pair requires walking an interleave of Θ(n)
    gaps that is specific to that pair.  |C| = Θ(N) (the identical rows
    are tied with same-relation equalities, Example B.3 style), while
    Minesweeper's probe search pays ω(|C|) — the measured counterpart of
    "no O(|C|^{4/3-ε} + Z) algorithm exists for beta-cyclic queries".

    Note: our shadow-chain backtracker dismisses a (a_0, a_{c-2}) pair for
    *all* middle values at once (a meet-pattern constraint), so product-
    structured families collapse to Õ(|C|); the pairwise interleave here
    is what resists that collapse.
    """
    if c < 3:
        raise ValueError("cycle length must be >= 3")
    grid = [(x, y) for x in range(n) for y in range(n)]
    relations: List[Relation] = []
    for i in range(c - 2):
        relations.append(
            Relation(f"R{i}", [f"A{i}", f"A{i + 1}"], grid)
        )
    evens = [(x, 2 * j) for x in range(n) for j in range(1, n + 1)]
    relations.append(
        Relation(f"R{c - 2}", [f"A{c - 2}", f"A{c - 1}"], evens)
    )
    odds = [(x, 2 * j + 1) for x in range(n) for j in range(1, n + 1)]
    # The closing relation R_{c-1}(A_{c-1}, A_0) is indexed GAO-consistently
    # as (A_0, A_{c-1}): odd A_{c-1} values under every A_0.
    relations.append(Relation(f"R{c - 1}", [f"A0", f"A{c - 1}"], odds))
    query = Query(relations)
    return PaperInstance(
        name="beta_cyclic_cycle",
        query=query,
        gao=[f"A{i}" for i in range(c)],
        certificate_size=query.total_tuples(),
        output_size=0,
        notes="beta-cyclic; no O(|C|^{4/3-eps}+Z) algorithm (Prop 2.8)",
        metadata={"c": c, "n": n},
    )


# ----------------------------------------------------------------------
# Triangle hard family (Appendix L motivation)
# ----------------------------------------------------------------------


def triangle_hard(n: int) -> Tuple[List[Row], List[Row], List[Row], int]:
    """R complete, S hits even C values, T hits odd C values.

    Output empty; |C| = Θ(n²) (same-relation equalities tie the identical
    rows, one interleave chain finishes).  The plain per-(a,b) CDS grinds
    through Θ(n²) pairs with Θ(n) interleave work each; the dyadic CDS
    shares C-coverage across b-blocks.  Returns (R, S, T, |C|).
    """
    r_edges = [(a, b) for a in range(n) for b in range(n)]
    s_edges = [(b, 2 * k) for b in range(n) for k in range(1, n + 1)]
    t_edges = [(a, 2 * k + 1) for a in range(n) for k in range(1, n + 1)]
    certificate = 2 * n * n + 2 * n
    return r_edges, s_edges, t_edges, certificate


def triangle_with_output(n: int, n_triangles: int, seed: int = 0) -> Tuple[
    List[Row], List[Row], List[Row]
]:
    """A random sparse instance with ~n_triangles planted triangles."""
    import random as _random

    rng = _random.Random(seed)
    r_edges = {(rng.randrange(n), rng.randrange(n)) for _ in range(3 * n)}
    s_edges = {(rng.randrange(n), rng.randrange(n)) for _ in range(3 * n)}
    t_edges = {(rng.randrange(n), rng.randrange(n)) for _ in range(3 * n)}
    for _ in range(n_triangles):
        a, b, c = rng.randrange(n), rng.randrange(n), rng.randrange(n)
        r_edges.add((a, b))
        s_edges.add((b, c))
        t_edges.add((a, c))
    return sorted(r_edges), sorted(s_edges), sorted(t_edges)


# ----------------------------------------------------------------------
# Set-intersection families (Appendix H / DLM)
# ----------------------------------------------------------------------


def intersection_blocks(m: int, block: int) -> List[List[int]]:
    """m sets in pairwise-disjoint value blocks: O(m) certificate."""
    return [
        list(range(i * (block + 10), i * (block + 10) + block))
        for i in range(m)
    ]


def intersection_interleaved(n: int) -> List[List[int]]:
    """Two perfectly interleaved sets (evens/odds): Θ(n) certificate."""
    return [
        [2 * i for i in range(n)],
        [2 * i + 1 for i in range(n)],
    ]


def intersection_with_overlap(n: int, overlap: int, seed: int = 0) -> List[List[int]]:
    """Two mostly separated sets sharing ``overlap`` planted values."""
    import random as _random

    rng = _random.Random(seed)
    shared = sorted(rng.sample(range(10 * n, 11 * n), min(overlap, n)))
    first = sorted(set(range(0, 2 * n, 2)) | set(shared))
    second = sorted(set(range(4 * n, 6 * n, 2)) | set(shared))
    return [first, second]


# ----------------------------------------------------------------------
# Example 4.1: the lazy-inference constraint workload (CDS-level)
# ----------------------------------------------------------------------


def example_4_1_constraints(n: int) -> List[Tuple[Tuple, int, object]]:
    """The Example 4.1 constraint set, as (prefix, low, high)-style triples.

    Returns constraints for a 3-attribute CDS: without memoized chain
    inference, finding that no active tuple exists takes Θ(n³) work; with
    it, O(n²).  (prefix components: ints or the WILDCARD sentinel.)
    """
    from repro.core.constraints import WILDCARD
    from repro.util.sentinels import NEG_INF, POS_INF

    constraints: List[Tuple[Tuple, int, object]] = []
    for a in range(1, n + 1):
        for b in range(1, n + 1):
            constraints.append(((a, b), NEG_INF, 1))
    for b in range(1, n + 1):
        for i in range(1, n + 1):
            constraints.append(((WILDCARD, b), 2 * i - 2, 2 * i))
    for i in range(1, n + 1):
        constraints.append(((WILDCARD, WILDCARD), 2 * i - 1, 2 * i + 1))
    constraints.append(((WILDCARD, WILDCARD), 2 * n, POS_INF))
    # Boundary gaps on A and B so that full coverage is actually provable
    # (Example 4.1 quantifies over a, b in [n] only).
    constraints.append(((), NEG_INF, 1))
    constraints.append(((), n, POS_INF))
    constraints.append(((WILDCARD,), NEG_INF, 1))
    constraints.append(((WILDCARD,), n, POS_INF))
    return constraints
