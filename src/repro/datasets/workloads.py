"""The Section 5.2 experimental workload (Figure 2).

Three queries over a graph S and Bernoulli-sampled unary vertex relations
R_i (p ≈ 0.001 in the paper):

* star:   R1(A) ⋈ S(A,B) ⋈ S(A,C) ⋈ S(A,D) ⋈ R2(B) ⋈ R3(C) ⋈ R4(D)
* 3-path: S(A,B) ⋈ S(B,C) ⋈ S(C,D) ⋈ R5(A) ⋈ R6(B) ⋈ R7(C) ⋈ R8(D)
* tree:   S(A,B) ⋈ S(B,C) ⋈ S(B,D) ⋈ S(D,E) ⋈ R9(A) ⋈ R10(C) ⋈ R11(D) ⋈ R12(E)

A relation may appear several times with different attribute bindings; we
materialize one :class:`Relation` copy per atom (our Query atoms are
named), which matches the paper's input-size accounting N = Σ |atoms|.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.core.query import Query
from repro.datasets.graphs import sample_vertices
from repro.storage.relation import Relation

Edge = Tuple[int, int]


def _unary(name: str, attr: str, vertices: Sequence[int]) -> Relation:
    return Relation(name, [attr], [(v,) for v in vertices])


def star_query(
    edges: Sequence[Edge], probability: float = 0.001, seed: int = 0
) -> Query:
    """The Figure-2 star query."""
    return Query(
        [
            _unary("R1", "A", sample_vertices(edges, probability, seed)),
            Relation("S_ab", ["A", "B"], edges),
            Relation("S_ac", ["A", "C"], edges),
            Relation("S_ad", ["A", "D"], edges),
            _unary("R2", "B", sample_vertices(edges, probability, seed + 1)),
            _unary("R3", "C", sample_vertices(edges, probability, seed + 2)),
            _unary("R4", "D", sample_vertices(edges, probability, seed + 3)),
        ]
    )


def three_path_query(
    edges: Sequence[Edge], probability: float = 0.001, seed: int = 0
) -> Query:
    """The Figure-2 3-path query."""
    return Query(
        [
            Relation("S_ab", ["A", "B"], edges),
            Relation("S_bc", ["B", "C"], edges),
            Relation("S_cd", ["C", "D"], edges),
            _unary("R5", "A", sample_vertices(edges, probability, seed)),
            _unary("R6", "B", sample_vertices(edges, probability, seed + 1)),
            _unary("R7", "C", sample_vertices(edges, probability, seed + 2)),
            _unary("R8", "D", sample_vertices(edges, probability, seed + 3)),
        ]
    )


def tree_query(
    edges: Sequence[Edge], probability: float = 0.001, seed: int = 0
) -> Query:
    """The Figure-2 tree query."""
    return Query(
        [
            Relation("S_ab", ["A", "B"], edges),
            Relation("S_bc", ["B", "C"], edges),
            Relation("S_bd", ["B", "D"], edges),
            Relation("S_de", ["D", "E"], edges),
            _unary("R9", "A", sample_vertices(edges, probability, seed)),
            _unary("R10", "C", sample_vertices(edges, probability, seed + 1)),
            _unary("R11", "D", sample_vertices(edges, probability, seed + 2)),
            _unary("R12", "E", sample_vertices(edges, probability, seed + 3)),
        ]
    )


FIGURE2_QUERIES: Dict[str, object] = {
    "star": star_query,
    "3-path": three_path_query,
    "tree": tree_query,
}


def input_size(query: Query) -> int:
    """N — total tuples over all atoms (the paper's Figure-2 'N')."""
    return query.total_tuples()
