"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiments [names...]``
    Rerun the paper's experiments and print their tables (see
    EXPERIMENTS.md; default: all).

``join --relation NAME=ATTRS:FILE [...]``
    Evaluate a natural join over integer-CSV relations with Minesweeper
    (or a baseline engine) and print rows plus instrumentation.
    ``--workers W [--shards K]`` shards the first GAO attribute's domain
    and runs the ranges in a multiprocessing pool (rows and their order
    are invariant); the same flags apply to ``certificate`` (per-shard
    record+check fan-out) and ``stream`` (sharded delta terms).

``gao-search --relation ...``
    Measure candidate attribute orders and report the cheapest
    (the paper's §7 future-work direction, executable).

``certificate --relation ...``
    Run the Proposition-2.5 recorder: extract the comparisons the engine
    performs and check them with the randomized Definition-2.3 refuter.

``stream --relation ... --view Q=R,S --log updates.log``
    Replay an update log against live views: registers the relations as
    writable (LSM) ``DeltaRelation``s, maintains each view incrementally
    via the delta rule, and reports incremental-vs-recompute op counts
    and wall time per batch.

``query --relation ... "Q(x,z) :- R(x,y), S(y,z)"``
    Parse, plan, and execute a conjunctive query text through the
    serving layer (:mod:`repro.serve`): the cost-based planner picks
    the engine (triangle CDS / Yannakakis / Minesweeper), the GAO, and
    the shard split, and the plan is cached by query signature.
    ``--explain`` prints the candidate scoreboard instead of rows;
    ``--repl`` reads statements (queries, ``+R 1,2`` updates,
    ``commit``, ``CREATE``, ``EXPLAIN``, ``STATS``) from stdin.

``serve --script FILE [--relation ...] [--data-dir DIR]``
    Batch serving: replay a script of mixed DDL / updates / queries
    against a live catalog and print the transcript.  With
    ``--data-dir`` the catalog is durable: state is recovered from the
    directory (WAL + newest snapshot) before the script runs and every
    mutation is journaled, so a crash mid-script loses nothing that
    committed (``--fsync`` picks the sync policy,
    ``--snapshot-on-exit`` cuts a snapshot and trims the WAL on the
    way out; the script's ``SNAPSHOT`` statement does it mid-run).

``recover --data-dir DIR [--snapshot]``
    Rebuild catalog state from a data directory (newest valid snapshot
    + WAL suffix replay, Merkle-verified) and report what was
    recovered.  ``--snapshot`` then persists the recovered state as a
    fresh snapshot and deletes the WAL segments it covers, bounding
    future recovery time.

``verify-state --data-dir DIR``
    Audit a data directory offline: manifest checksum, per-file
    SHA-256 hashes, Merkle relation roots and catalog root, WAL
    integrity.  Exit 1 if any check fails (tampered or corrupt state).

``bench [--smoke]``
    Run the benchmark suite under pytest.  ``--smoke`` runs every
    benchmark once with tiny inputs (sets ``REPRO_BENCH_SMOKE=1``) so CI
    exercises the perf plumbing without timing noise; ``make bench-smoke``
    is the same entry point.

Relation files are headerless CSVs of integers, one tuple per line.
"""

from __future__ import annotations

import argparse
import glob
import os
import sys
from typing import Sequence

from repro.core.engine import join
from repro.core.gao_search import search_gao
from repro.core.query import Query
from repro.storage.flat_trie import FlatTrieRelation
from repro.storage.relation import Relation


def _load_relation(spec: str):
    """Parse ``NAME=A,B:path.csv`` into ``(Relation, dictionaries)``.

    Non-integer columns are dictionary-encoded (order-preserving) via
    :mod:`repro.io`; output rows then show the integer codes, and
    ``dictionaries`` maps the encoded attributes to their code books.
    """
    from repro.io import load_csv

    try:
        name, rest = spec.split("=", 1)
        attrs_text, path = rest.split(":", 1)
    except ValueError:
        raise SystemExit(
            f"bad --relation spec {spec!r}; expected NAME=A,B:file.csv"
        )
    attributes = [a.strip() for a in attrs_text.split(",") if a.strip()]
    try:
        relation, dictionaries = load_csv(
            path, name.strip(), attributes=attributes
        )
    except OSError as exc:
        raise SystemExit(f"cannot read {path}: {exc}")
    except ValueError as exc:
        raise SystemExit(f"{path}: {exc}")
    return relation, dictionaries


def _build_query(specs: Sequence[str]) -> Query:
    if not specs:
        raise SystemExit("at least one --relation is required")
    return Query([_load_relation(spec)[0] for spec in specs])


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.runners import RUNNERS, format_table

    names = args.names or sorted(RUNNERS)
    unknown = [n for n in names if n not in RUNNERS]
    if unknown:
        raise SystemExit(
            f"unknown experiments {unknown}; available: {sorted(RUNNERS)}"
        )
    for name in names:
        print(format_table(RUNNERS[name]()))
        print()
    return 0


def _parallel_args(args: argparse.Namespace):
    """Validated ``(workers, shards)`` from the shared CLI flags.

    ``shards`` is resolved to its default (``--workers``, else 1) here,
    once, for every command that takes the pair.
    """
    workers = args.workers
    shards = args.shards
    if workers is not None and workers < 0:
        raise SystemExit("--workers must be non-negative")
    if shards is not None and shards < 1:
        raise SystemExit("--shards must be >= 1")
    if shards is None:
        shards = workers if workers else 1
    return workers, shards


def _resilience_args(args: argparse.Namespace):
    """Validated ``(budget, retry_policy)`` from the shared flags.

    Either may be ``None`` — an unbounded budget / the default policy.
    """
    from repro.core.resilience import QueryBudget, RetryPolicy

    budget = None
    if (
        args.max_ops is not None
        or args.deadline_ms is not None
        or args.max_rows is not None
    ):
        try:
            budget = QueryBudget(
                max_ops=args.max_ops,
                deadline_ms=args.deadline_ms,
                max_rows=args.max_rows,
            )
        except ValueError as exc:
            raise SystemExit(str(exc))
    policy = None
    if args.retries is not None:
        if args.retries < 0:
            raise SystemExit("--retries must be non-negative")
        policy = RetryPolicy(retries=args.retries)
    return budget, policy


def _cmd_join(args: argparse.Namespace) -> int:
    if args.limit is not None and args.limit < 0:
        raise SystemExit("--limit must be non-negative")
    workers, shards = _parallel_args(args)
    budget, retry_policy = _resilience_args(args)
    query = _build_query(args.relation)
    gao = args.gao.split(",") if args.gao else None
    if args.explain:
        from repro.core.explain import explain, format_explanation

        print(format_explanation(explain(query, gao=gao, dry_run=True)))
        return 0
    if args.engine == "minesweeper":
        from repro.core.resilience import admit

        result = join(
            query,
            gao=gao,
            backend=args.backend,
            limit=args.limit,
            workers=workers,
            shards=shards,
            cds_backend=args.cds_backend,
            admission=admit(budget),
            retry_policy=retry_policy,
        )
        rows, stats = result.rows, result.stats()
        used_gao = list(result.gao)
    else:
        if args.limit is not None:
            raise SystemExit(
                "--limit is Minesweeper-only (the baselines are batch "
                "engines with no certificate-bound streaming path)"
            )
        if workers or (shards and shards > 1):
            raise SystemExit(
                "--workers/--shards are Minesweeper-only (the baselines "
                "have no sharded execution path)"
            )
        if budget is not None or retry_policy is not None:
            raise SystemExit(
                "--max-ops/--deadline-ms/--max-rows/--retries are "
                "Minesweeper-only (the baselines have no cooperative "
                "admission checkpoints)"
            )
        if gao is None:
            gao, _ = query.choose_gao()
        prepared = query.with_gao(gao, backend=args.backend)
        used_gao = gao
        if args.engine == "leapfrog":
            from repro.baselines.leapfrog import leapfrog_triejoin

            rows = leapfrog_triejoin(prepared)
        elif args.engine == "generic":
            from repro.baselines.generic_join import generic_join

            rows = generic_join(prepared)
        elif args.engine == "yannakakis":
            from repro.baselines.yannakakis import yannakakis_join

            rows = yannakakis_join(query, gao)
        else:
            raise SystemExit(f"unknown engine {args.engine!r}")
        stats = prepared.counters.snapshot()
    print(f"# GAO: {','.join(used_gao)}")
    for row in rows:
        print(",".join(map(str, row)))
    print(f"# {len(rows)} rows", file=sys.stderr)
    for key, value in stats.items():
        if value:
            print(f"# {key}: {value}", file=sys.stderr)
    return 0


def _cmd_gao_search(args: argparse.Namespace) -> int:
    query = _build_query(args.relation)
    result = search_gao(query, samples=args.samples)
    print(f"best GAO: {','.join(result.best_gao)}  "
          f"(certificate estimate {result.best_estimate})")
    for order, estimate in result.scoreboard[: args.top]:
        print(f"  {','.join(order):30s} {estimate}")
    return 0


def _cmd_certificate(args: argparse.Namespace) -> int:
    from repro.certificates.recorder import record_certificate
    from repro.certificates.verifier import check_certificate

    workers, shards = _parallel_args(args)
    query = _build_query(args.relation)
    gao = args.gao.split(",") if args.gao else query.choose_gao()[0]
    prepared = query.with_gao(gao, backend=args.backend)
    if shards > 1 or (workers or 0) >= 1:
        # like join: --workers 1 is a real 1-process pool over the
        # single-range plan, not a silent fall-through
        from repro.parallel.certify import certify_sharded

        results = certify_sharded(
            prepared,
            shards,
            workers=workers or 0,
            samples=args.samples,
            cds_backend=args.cds_backend,
        )
        for shard in results:
            verdict = "PASSED" if shard.passed else "REFUTED"
            print(
                f"# shard [{shard.lo}, {shard.hi}]: rows={shard.rows} "
                f"comparisons={shard.comparisons} "
                f"findgap={shard.findgap} {verdict}"
            )
        print(f"# output rows: {sum(s.rows for s in results)}")
        print(
            "# recorded comparisons: "
            f"{sum(s.comparisons for s in results)} "
            f"(over {len(results)} shards)"
        )
        if all(s.passed for s in results):
            print("# certificate check: PASSED (no refuting instance found)")
            return 0
        print("# certificate check: REFUTED")
        return 1
    rows, argument = record_certificate(
        prepared, cds_backend=args.cds_backend
    )
    print(f"# output rows: {len(rows)}")
    print(f"# recorded comparisons: {len(argument)}")
    counterexample = check_certificate(
        prepared, argument, samples=args.samples
    )
    if counterexample is None:
        print("# certificate check: PASSED (no refuting instance found)")
        return 0
    print("# certificate check: REFUTED")
    return 1


def _catalog_from_specs(specs, memtable_limit=None, catalog=None):
    """A live ``Catalog`` with one writable relation per ``--relation``.

    Shared by ``stream`` / ``query`` / ``serve``.  Dictionary-encoded
    CSVs are refused: these commands accept raw-integer updates (and,
    for queries, print raw values), which cannot address encoded codes
    — pre-encode the data with one code book instead.  Pass ``catalog``
    to load into an existing (e.g. durable) catalog instead of a fresh
    one; a spec colliding with a recovered relation is an error.
    """
    from repro.dynamic import Catalog

    if catalog is None:
        catalog = Catalog(memtable_limit=memtable_limit)
    for spec in specs:
        loaded, dictionaries = _load_relation(spec)
        if dictionaries:
            raise SystemExit(
                f"relation {loaded.name!r} has dictionary-encoded "
                f"columns {sorted(dictionaries)}; this command needs "
                "integer-only data (pre-encode the CSV and the "
                "updates with the same code book)"
            )
        # Adopt the loader's FlatTrie as the DeltaRelation's first run
        # instead of rebuilding the index from its tuples.
        index = loaded.index
        if not isinstance(index, FlatTrieRelation):
            index = loaded.tuples()
        try:
            catalog.create_relation(loaded.name, loaded.attributes, index)
        except ValueError as exc:  # e.g. duplicate --relation name
            raise SystemExit(str(exc))
    return catalog


def _cmd_stream(args: argparse.Namespace) -> int:
    """Replay an update log against live views (the dynamic subsystem)."""
    import time

    from repro.dynamic import read_log

    if not args.view:
        raise SystemExit("at least one --view NAME=R1,R2,... is required")
    if args.memtable_limit is not None and args.memtable_limit < 1:
        raise SystemExit("--memtable-limit must be >= 1")
    if args.compact_every is not None and args.compact_every < 1:
        raise SystemExit("--compact-every must be >= 1")
    catalog = _catalog_from_specs(
        args.relation, memtable_limit=args.memtable_limit
    )
    gao = args.gao.split(",") if args.gao else None
    workers, shards = _parallel_args(args)
    for spec in args.view:
        try:
            name, rest = spec.split("=", 1)
        except ValueError:
            raise SystemExit(
                f"bad --view spec {spec!r}; expected NAME=R1,R2,..."
            )
        members = [r.strip() for r in rest.split(",") if r.strip()]
        try:
            catalog.register_view(
                name.strip(),
                members,
                gao=gao,
                shards=shards,
                workers=workers or 0,
                cds_backend=args.cds_backend,
            )
        except (KeyError, ValueError) as exc:
            raise SystemExit(f"cannot register view {name!r}: {exc}")
    try:
        batches = read_log(args.log, require_commit=args.strict)
    except OSError as exc:
        raise SystemExit(f"cannot read {args.log}: {exc}")
    except ValueError as exc:
        raise SystemExit(f"{args.log}: {exc}")
    totals = {
        v: {"inc_findgap": 0, "inc_probes": 0, "inc_s": 0.0,
            "rec_findgap": 0, "rec_probes": 0, "rec_s": 0.0}
        for v in catalog.view_names()
    }
    failed = False
    refresh_s = 0.0
    for i, batch in enumerate(batches, 1):
        try:
            report = catalog.apply_batch(batch)
        except (KeyError, ValueError) as exc:
            # unknown relation, arity mismatch, non-netted +/- pair, ...
            raise SystemExit(f"batch {i}: {exc}")
        # The storage apply invalidated the touched relations' merged
        # views; rebuild them now, under their own timer, so the cost
        # is charged to the incremental side rather than silently
        # absorbed by whichever path (comparator or next batch) reads
        # first.
        t0 = time.perf_counter()  # lint: disable=determinism -- reporting-only timing; never feeds results
        for name in catalog.relation_names():
            len(catalog.relation(name))
        refresh_s += time.perf_counter() - t0  # lint: disable=determinism -- reporting-only timing; never feeds results
        applied = ", ".join(
            f"{name} +{ins}/-{dels}"
            for name, (ins, dels) in report.applied.items()
        )
        print(f"batch {i}: {len(batch)} updates ({applied or 'no-op'})")
        for view_name in catalog.view_names():
            entry = report.views[view_name]
            slot = totals[view_name]
            slot["inc_findgap"] += entry["ops"].get("findgap", 0)
            slot["inc_probes"] += entry["ops"].get("probes", 0)
            slot["inc_s"] += entry["seconds"]
            line = (
                f"  {view_name}: {entry['rows']} rows "
                f"(+{entry['rows_added']}/-{entry['rows_removed']})  "
                f"inc findgap={entry['ops'].get('findgap', 0)} "
                f"probes={entry['ops'].get('probes', 0)}"
            )
            if not args.no_recompute:
                view = catalog.view(view_name)
                rows, ops, rec_seconds = view.recompute()
                slot["rec_findgap"] += ops.get("findgap", 0)
                slot["rec_probes"] += ops.get("probes", 0)
                slot["rec_s"] += rec_seconds
                line += (
                    f"  |  recompute findgap={ops.get('findgap', 0)} "
                    f"probes={ops.get('probes', 0)}"
                )
                if rows != view.rows():
                    print(line)
                    print(
                        f"  {view_name}: MISMATCH vs recompute "
                        f"({len(view.rows())} maintained, {len(rows)} "
                        "recomputed)"
                    )
                    failed = True
                    continue
            print(line)
        if args.compact_every and i % args.compact_every == 0:
            catalog.compact()
    print(f"# replayed {len(batches)} batches")
    print(
        f"# merged-view refresh after applies: {refresh_s * 1e3:.1f} ms "
        "(incremental-side cost, shared across views)"
    )
    for view_name, slot in totals.items():
        summary = (
            f"# {view_name}: rows={len(catalog.view(view_name))} "
            f"incremental findgap={slot['inc_findgap']} "
            f"probes={slot['inc_probes']} "
            f"({slot['inc_s'] * 1e3:.1f} ms)"
        )
        if not args.no_recompute:
            summary += (
                f"  recompute findgap={slot['rec_findgap']} "
                f"probes={slot['rec_probes']} "
                f"({slot['rec_s'] * 1e3:.1f} ms)"
            )
            if slot["inc_findgap"]:
                summary += (
                    "  savings="
                    f"{slot['rec_findgap'] / slot['inc_findgap']:.1f}x"
                )
        print(summary)
    if args.print_rows:
        for view_name in catalog.view_names():
            for row in catalog.query(view_name):
                print(f"{view_name}," + ",".join(map(str, row)))
    return 1 if failed else 0


def _planner_config(args: argparse.Namespace):
    """``(PlannerConfig, RetryPolicy | None)`` from the query/serve flags.

    The admission budget rides on the config (``PlannerConfig.budget``)
    so the session picks it up as its per-statement default; the retry
    policy is a session-level knob and returned separately.
    """
    from repro.planner import PlannerConfig

    if args.workers is not None and args.workers < 0:
        raise SystemExit("--workers must be non-negative")
    if args.shards is not None and args.shards < 1:
        raise SystemExit("--shards must be >= 1")
    if args.sample_limit < 1:
        raise SystemExit("--sample-limit must be >= 1")
    budget, retry_policy = _resilience_args(args)
    return PlannerConfig(
        sample_limit=args.sample_limit,
        seed=args.seed,
        workers=args.workers or 0,
        shards=args.shards or 0,
        cds_backend=args.cds_backend,
        budget=budget,
    ), retry_policy


def _print_exec_result(result) -> None:
    print(f"# columns: {','.join(result.columns)}")
    for row in result.rows:
        print(",".join(map(str, row)))
    if result.statement.is_aggregate():
        print(f"# value: {result.value}", file=sys.stderr)
    else:
        print(f"# {len(result.rows)} rows", file=sys.stderr)
    origin = "cached plan" if result.cached_plan else "planned"
    print(f"# plan: {result.plan_summary()} ({origin})", file=sys.stderr)
    for key, value in result.ops.items():
        if value:
            print(f"# {key}: {value}", file=sys.stderr)


def _repl(session) -> int:
    """Read script statements from stdin; print results as they land."""
    from repro.serve import ScriptError, ScriptRunner

    runner = ScriptRunner(session)
    interactive = sys.stdin.isatty()

    def prompt() -> None:
        if interactive:
            print("repro> ", end="", file=sys.stderr, flush=True)

    def drain() -> None:
        # Print-and-clear: a long-lived REPL must not retain every
        # past result line in the runner's output buffer.
        for line in runner.out:
            print(line)
        runner.out.clear()

    prompt()
    for lineno, raw in enumerate(sys.stdin, 1):
        stripped = raw.strip()
        if stripped in ("exit", "quit", r"\q"):
            break
        try:
            runner.run_line(raw, lineno)
        except ScriptError as exc:
            print(f"error: {exc}", file=sys.stderr)
        drain()
        prompt()
    runner.finish()
    drain()
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    """Plan and execute a conjunctive query text (the serving layer)."""
    from repro.lang import QueryError
    from repro.serve import Session

    config, retry_policy = _planner_config(args)
    catalog = _catalog_from_specs(args.relation)
    obs = None
    if args.trace:
        from repro.obs import Observability

        obs = Observability(trace=True)
    session = Session(
        catalog, config=config, obs=obs, retry_policy=retry_policy
    )
    if args.repl:
        if args.text or args.explain:
            raise SystemExit(
                "--repl reads statements from stdin; drop the query "
                "text / --explain"
            )
        return _repl(session)
    if not args.text:
        raise SystemExit("a query text is required (or pass --repl)")
    try:
        if args.explain:
            print(session.explain(args.text))
            return 0
        result = session.execute(args.text)
    except QueryError as exc:
        raise SystemExit(str(exc))
    _print_exec_result(result)
    if result.trace is not None:
        from repro.obs import render_tree

        print("# trace:", file=sys.stderr)
        for line in render_tree([result.trace]):
            print(f"#   {line}", file=sys.stderr)
    return 0


def _dump_metrics(session, directory: str) -> None:
    """Write the observability artifacts for a finished serve run:
    ``metrics.json`` (registry snapshot + unified stats tree),
    ``metrics.prom`` (Prometheus text exposition, native instruments
    plus the ``repro_stat`` tree gauge), ``spans.jsonl`` (every
    finished span, parents before children), and
    ``slow_queries.jsonl``."""
    import json

    from repro.obs import stats_to_prometheus, unified_stats

    os.makedirs(directory, exist_ok=True)
    obs = session.obs
    tree = unified_stats(session)
    with open(os.path.join(directory, "metrics.json"), "w") as handle:
        json.dump(
            {"metrics": obs.metrics.snapshot(), "stats": tree},
            handle,
            indent=2,
            sort_keys=True,
        )
        handle.write("\n")
    with open(os.path.join(directory, "metrics.prom"), "w") as handle:
        handle.write(obs.metrics.render_prometheus())
        handle.write(stats_to_prometheus(tree))
    with open(os.path.join(directory, "spans.jsonl"), "w") as handle:
        obs.tracer.export_jsonl(handle)
    with open(
        os.path.join(directory, "slow_queries.jsonl"), "w"
    ) as handle:
        for entry in obs.slow_queries:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
    print(f"# metrics written to {directory}", file=sys.stderr)


def _cmd_serve(args: argparse.Namespace) -> int:
    """Replay a script of mixed DDL / updates / queries (batch serving),
    or host the multi-tenant HTTP server (``--http``)."""
    from repro.serve import ScriptError, Session, run_script

    if args.http:
        if args.script:
            raise SystemExit("--http and --script are mutually exclusive")
        return _cmd_serve_http(args)
    if not args.script:
        raise SystemExit("serve requires --script (or --http)")
    config, retry_policy = _planner_config(args)
    if args.slow_query_ms is not None and args.slow_query_ms < 0:
        raise SystemExit("--slow-query-ms must be non-negative")
    obs = None
    if args.trace or args.metrics_dir or args.slow_query_ms is not None:
        from repro.obs import Observability

        # --metrics-dir implies tracing: spans.jsonl should hold the
        # run's spans, not be an empty artifact.
        obs = Observability(
            trace=bool(args.trace or args.metrics_dir),
            slow_query_ms=args.slow_query_ms,
        )
    if args.data_dir:
        try:
            session = Session.durable(
                args.data_dir, config=config, fsync=args.fsync, obs=obs,
                retry_policy=retry_policy,
            )
        except ValueError as exc:  # corrupt WAL / tampered snapshot
            raise SystemExit(f"cannot recover {args.data_dir}: {exc}")
        print(f"# {session.recovery.summary()}", file=sys.stderr)
        _catalog_from_specs(args.relation, catalog=session.catalog)
    else:
        if args.snapshot_on_exit:
            raise SystemExit("--snapshot-on-exit requires --data-dir")
        session = Session(
            _catalog_from_specs(args.relation), config=config, obs=obs,
            retry_policy=retry_policy,
        )
    # Even when the script fails, a durable session must close its WAL
    # so batch-policy commits get their close-time fsync.  The one
    # exception is an injected crash: it models a process death, which
    # never gets a graceful close.
    from repro.testing.faults import InjectedCrash

    try:
        try:
            lines = run_script(args.script, session)
        except OSError as exc:
            raise SystemExit(f"cannot read {args.script}: {exc}")
        except ScriptError as exc:
            raise SystemExit(str(exc))
        for line in lines:
            print(line)
        stats = session.stats()
        cache = stats["plan_cache"]
        print(
            f"# served {stats['queries_executed']} queries: "
            f"{stats['planner']['plans_built']} planned, "
            f"{cache['hits']} from cache "
            f"({cache['invalidated']} invalidated)",
            file=sys.stderr,
        )
        if args.data_dir and args.snapshot_on_exit:
            info = session.catalog.snapshot(truncate_wal=True)
            print(
                f"# snapshot {info.snapshot_id} @ wal lsn {info.wal_lsn}",
                file=sys.stderr,
            )
        if args.metrics_dir:
            _dump_metrics(session, args.metrics_dir)
    except InjectedCrash:
        raise
    except BaseException:
        session.close()
        raise
    session.close()
    return 0


def _cmd_serve_http(args: argparse.Namespace) -> int:
    """Host the multi-tenant HTTP server (see :mod:`repro.net`)."""
    import dataclasses
    import json
    import signal
    import threading

    from repro.net import TenantRegistry, TenantSpec, serve_http

    config, retry_policy = _planner_config(args)
    if args.slow_query_ms is not None and args.slow_query_ms < 0:
        raise SystemExit("--slow-query-ms must be non-negative")
    if args.snapshot_on_exit and not args.data_dir:
        raise SystemExit("--snapshot-on-exit requires --data-dir")
    if args.relation:
        raise SystemExit(
            "--relation is a script-mode flag; load data over HTTP "
            "(/v1/update or /v1/script)"
        )
    specs = []
    try:
        for text in (args.tenants or ["default"]):
            spec = TenantSpec.parse(text)
            # CLI-level QoS/pool flags fill knobs the per-tenant
            # override string left unset; the override always wins.
            fills = {}
            for knob, flag in (
                ("max_ops", args.max_ops),
                ("deadline_ms", args.deadline_ms),
                ("max_rows", args.max_rows),
            ):
                if getattr(spec, knob) is None and flag is not None:
                    fills[knob] = flag
            if spec.pool_size == 4 and args.pool_size != 4:
                fills["pool_size"] = args.pool_size
            if spec.queue_depth == 64 and args.queue_depth != 64:
                fills["queue_depth"] = args.queue_depth
            if fills:
                spec = dataclasses.replace(spec, **fills)
            specs.append(spec)
    except ValueError as exc:
        raise SystemExit(f"bad --tenant: {exc}")
    try:
        registry = TenantRegistry(
            specs,
            data_dir=args.data_dir,
            config=config,
            retry_policy=retry_policy,
            fsync=args.fsync,
            cache_capacity=args.cache_capacity,
            trace=bool(args.trace),
            slow_query_ms=args.slow_query_ms,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    for tid, tenant in registry.tenants():
        if tenant.recovery is not None:
            print(f"# [{tid}] {tenant.recovery.summary()}",
                  file=sys.stderr)
    server = serve_http(registry, host=args.host, port=args.port)
    # The demo/smoke harness parses this line to find an ephemeral
    # port, so it goes to stdout and is flushed before serve_forever.
    print(f"# listening on http://{args.host}:{server.port}",
          flush=True)
    print(
        f"# tenants: {', '.join(registry.tenant_ids())}",
        file=sys.stderr,
    )

    def _graceful(signum, frame) -> None:
        # shutdown() blocks until serve_forever exits — which runs on
        # this very thread — so it must fire from another one.
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _graceful)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        registry.close(snapshot=args.snapshot_on_exit)
        if args.metrics_dir:
            os.makedirs(args.metrics_dir, exist_ok=True)
            prom_path = os.path.join(args.metrics_dir, "metrics.prom")
            with open(prom_path, "w") as handle:
                handle.write(server.gateway.render_metrics())
            with open(
                os.path.join(args.metrics_dir, "metrics.json"), "w"
            ) as handle:
                json.dump(
                    {
                        "metrics": registry.metrics.snapshot(),
                        "stats": registry.stats(),
                    },
                    handle, indent=2, sort_keys=True,
                )
                handle.write("\n")
            print(f"# metrics written to {args.metrics_dir}",
                  file=sys.stderr)
        print("# server stopped", file=sys.stderr)
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    """Scripted round-trips against ``repro serve --http``."""
    import json
    import urllib.error

    from repro.net import Client, ClientError

    client = Client(args.url, tenant=args.tenant,
                    timeout_s=args.timeout)

    def _need_arg(what: str) -> str:
        if not args.arg:
            raise SystemExit(f"client {args.action} needs {what}")
        return args.arg

    try:
        if args.action == "query":
            budget = {
                k: v for k, v in (
                    ("max_ops", args.max_ops),
                    ("deadline_ms", args.deadline_ms),
                    ("max_rows", args.max_rows),
                ) if v is not None
            }
            result = client.query(
                _need_arg("a query text"), budget=budget or None
            )
            columns = result.get("columns", [])
            print(f"# columns: {','.join(map(str, columns))}")
            for row in result.get("rows", []):
                print(",".join(str(v) for v in row))
            if "value" in result:
                print(f"# value: {result['value']}", file=sys.stderr)
            print(
                f"# {len(result.get('rows', []))} rows, engine "
                f"{result.get('engine')}, "
                f"{'cached plan' if result.get('cached_plan') else 'planned'}, "
                f"{result.get('elapsed_ms')} ms",
                file=sys.stderr,
            )
        elif args.action == "prepare":
            result = client.prepare(_need_arg("a query text"))
            print(json.dumps(result, indent=2, sort_keys=True))
        elif args.action == "update":
            raw = _need_arg("update lines (';'-separated or @FILE)")
            if raw.startswith("@"):
                try:
                    with open(raw[1:]) as handle:
                        lines = [
                            ln.strip() for ln in handle
                            if ln.strip()
                            and not ln.lstrip().startswith("#")
                        ]
                except OSError as exc:
                    raise SystemExit(f"cannot read {raw[1:]}: {exc}")
            else:
                lines = [p.strip() for p in raw.split(";") if p.strip()]
            result = client.update(lines, sync=args.sync)
            print(json.dumps(result, indent=2, sort_keys=True))
        elif args.action == "script":
            path = _need_arg("a script path")
            try:
                with open(path) as handle:
                    text = handle.read()
            except OSError as exc:
                raise SystemExit(f"cannot read {path}: {exc}")
            result = client.script(text)
            for line in result.get("output", []):
                print(line)
        elif args.action == "stats":
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
        elif args.action == "metrics":
            sys.stdout.write(client.metrics())
        elif args.action == "health":
            print(json.dumps(client.healthz(), sort_keys=True))
        else:  # shutdown
            print(json.dumps(client.shutdown(), sort_keys=True))
    except ClientError as exc:
        print(
            f"error: {json.dumps(exc.payload, sort_keys=True)}",
            file=sys.stderr,
        )
        # Policy aborts (429 budget/backpressure, 504 deadline) mirror
        # the in-process ExecutionError exit code.
        return 4 if exc.is_policy_abort else 1
    except urllib.error.URLError as exc:
        raise SystemExit(f"cannot reach {args.url}: {exc.reason}")
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    """Rebuild catalog state from a data directory and report it."""
    from repro.dynamic import recover_catalog

    try:
        catalog, report = recover_catalog(
            args.data_dir,
            fsync=args.fsync,
            verify=not args.no_verify,
            attach=True,
        )
    except ValueError as exc:  # CorruptWalError / SnapshotError
        raise SystemExit(f"cannot recover {args.data_dir}: {exc}")
    print(f"# {report.summary()}")
    for repair in report.wal_repairs:
        print(f"# wal repair: {repair}")
    for name in sorted(report.relations):
        print(f"# relation {name}: {report.relations[name]} rows")
    for name in sorted(report.views):
        print(f"# view {name}: {report.views[name]} rows")
    print(f"# catalog root: {report.catalog_root}")
    print(f"# recovery took {report.seconds * 1e3:.1f} ms")
    if args.snapshot:
        info = catalog.snapshot(
            data_dir=args.data_dir, truncate_wal=True
        )
        print(
            f"# snapshot {info.snapshot_id} @ wal lsn {info.wal_lsn} "
            "(WAL segments it covers removed)"
        )
    catalog.wal.close()
    return 0


def _cmd_verify_state(args: argparse.Namespace) -> int:
    """Audit a data directory: hashes, Merkle roots, WAL integrity."""
    from repro.dynamic import verify_state

    report = verify_state(args.data_dir)
    for line in report.lines():
        print(line)
    if report.ok:
        print("# state verification: PASSED")
        return 0
    print("# state verification: FAILED", file=sys.stderr)
    return 1


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the static-analysis suite over ``src/repro``."""
    from pathlib import Path

    from repro.analysis import runner

    root = Path(args.root).resolve()
    baseline = Path(args.baseline).resolve() if args.baseline else None
    return runner.main(
        root,
        as_json=args.json,
        update_baseline=args.update_baseline,
        baseline=baseline,
    )


def _find_benchmarks_dir() -> str:
    """Locate the repo's ``benchmarks/`` directory (cwd, then checkout)."""
    here = os.path.dirname(os.path.abspath(__file__))
    candidates = [
        os.getcwd(),
        os.path.abspath(os.path.join(here, "..", "..")),  # <repo>/src/repro
    ]
    for root in candidates:
        bench_dir = os.path.join(root, "benchmarks")
        if os.path.isdir(bench_dir) and glob.glob(
            os.path.join(bench_dir, "bench_*.py")
        ):
            return bench_dir
    raise SystemExit(
        "cannot locate the benchmarks/ directory; run from the repo root"
    )


def _cmd_bench(args: argparse.Namespace) -> int:
    import subprocess

    bench_dir = _find_benchmarks_dir()
    root = os.path.dirname(bench_dir)
    if args.profile:
        # cProfile the workload registry in a fresh interpreter (the
        # driver owns the registry; see benchmarks/_workloads.py), so
        # hot-path claims in reviews are reproducible from the CLI.
        env = dict(os.environ)
        src_dir = os.path.join(root, "src")
        env["PYTHONPATH"] = (
            src_dir + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else src_dir
        )
        cmd = [
            sys.executable,
            os.path.join(bench_dir, "_workloads.py"),
            "--profile",
            "--top",
            str(args.top),
        ]
        if args.smoke:
            cmd.append("--smoke")
        if args.keyword:
            raise SystemExit(
                "--profile profiles workload-registry cases; select them "
                "by name (positional args), not -k"
            )
        cmd.extend(args.names)
        return subprocess.call(cmd, cwd=root, env=env)
    if args.names:
        raise SystemExit(
            "positional workload names apply to --profile only; select "
            "pytest benchmark files with -k"
        )
    files = sorted(glob.glob(os.path.join(bench_dir, "bench_*.py")))
    if args.keyword:
        files = [f for f in files if args.keyword in os.path.basename(f)]
        if not files:
            raise SystemExit(f"no benchmark file matches {args.keyword!r}")
    env = dict(os.environ)
    src = os.path.join(root, "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    if args.smoke:
        env["REPRO_BENCH_SMOKE"] = "1"
    cmd = [sys.executable, "-m", "pytest", "-q", *files]
    if args.benchmark_json:
        cmd.append(f"--benchmark-json={args.benchmark_json}")
    else:
        cmd.append("--benchmark-disable")
    return subprocess.call(cmd, cwd=root, env=env)


def _add_cds_backend_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cds-backend",
        choices=["pointer", "arena"],
        help="ConstraintTree storage backend (default: arena — flat "
        "integer-indexed arrays; rows and op counts are invariant)",
    )


def _add_planner_flags(parser: argparse.ArgumentParser) -> None:
    """Flags shared by the serving commands (query / serve)."""
    _add_parallel_flags(parser)
    _add_cds_backend_flag(parser)
    _add_resilience_flags(parser)
    parser.add_argument(
        "--sample-limit", type=int, default=256, metavar="K",
        help="per-relation row cap for the planner's candidate-scoring "
        "sample (default 256)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="seed for the planner's random GAO candidates (default 0)",
    )


def _add_resilience_flags(parser: argparse.ArgumentParser) -> None:
    """Admission-control / retry flags shared by join, query, serve."""
    parser.add_argument(
        "--max-ops", type=int, metavar="N",
        help="abort with a typed BudgetExceeded (exit 4) once the query "
        "has tallied N CDS operations (interval_ops + constraints)",
    )
    parser.add_argument(
        "--deadline-ms", type=int, metavar="MS",
        help="wall-clock deadline per query; pool workers cancel "
        "cooperatively and the driver aborts with QueryTimeout (exit 4)",
    )
    parser.add_argument(
        "--max-rows", type=int, metavar="N",
        help="abort with BudgetExceeded once the output exceeds N rows",
    )
    parser.add_argument(
        "--retries", type=int, metavar="K",
        help="retry a failed pooled shard attempt up to K times with "
        "exponential backoff before the in-process fallback (default 2)",
    )


def _add_parallel_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        metavar="W",
        help="multiprocessing pool size for sharded execution "
        "(0 = run shards sequentially in-process; implies --shards W)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        metavar="K",
        help="split the first GAO attribute's domain into K contiguous "
        "ranges balanced by stored tuple counts (default: --workers, "
        "else 1); rows and their order are invariant in K",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Minesweeper joins (PODS 2014 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiments", help="rerun paper experiments")
    p_exp.add_argument("names", nargs="*", help="experiment names (default all)")
    p_exp.set_defaults(func=_cmd_experiments)

    p_join = sub.add_parser("join", help="evaluate a natural join")
    p_join.add_argument("--relation", action="append", default=[],
                        metavar="NAME=A,B:FILE")
    p_join.add_argument("--gao", help="comma-separated attribute order")
    p_join.add_argument(
        "--engine",
        default="minesweeper",
        choices=["minesweeper", "leapfrog", "generic", "yannakakis"],
    )
    p_join.add_argument(
        "--explain",
        action="store_true",
        help="print the structural analysis + measured |C| instead of rows",
    )
    p_join.add_argument(
        "--backend",
        choices=["flat", "trie", "btree"],
        help="storage backend for every relation (default: flat)",
    )
    p_join.add_argument(
        "--limit",
        type=int,
        metavar="K",
        help="stop after K output rows (Minesweeper top-k streaming; "
        "op counts then reflect only the consumed part of the certificate)",
    )
    _add_parallel_flags(p_join)
    _add_cds_backend_flag(p_join)
    _add_resilience_flags(p_join)
    p_join.set_defaults(func=_cmd_join)

    p_gao = sub.add_parser("gao-search", help="find a cheap attribute order")
    p_gao.add_argument("--relation", action="append", default=[],
                       metavar="NAME=A,B:FILE")
    p_gao.add_argument("--samples", type=int, default=12)
    p_gao.add_argument("--top", type=int, default=5)
    p_gao.set_defaults(func=_cmd_gao_search)

    p_cert = sub.add_parser(
        "certificate", help="record and check a run's comparisons"
    )
    p_cert.add_argument("--relation", action="append", default=[],
                        metavar="NAME=A,B:FILE")
    p_cert.add_argument("--gao", help="comma-separated attribute order")
    p_cert.add_argument("--samples", type=int, default=20)
    p_cert.add_argument(
        "--backend",
        choices=["flat", "trie", "btree"],
        help="storage backend for every relation (default: flat)",
    )
    _add_parallel_flags(p_cert)
    _add_cds_backend_flag(p_cert)
    p_cert.set_defaults(func=_cmd_certificate)

    p_stream = sub.add_parser(
        "stream",
        help="replay an update log against live views (dynamic subsystem)",
    )
    p_stream.add_argument("--relation", action="append", default=[],
                          metavar="NAME=A,B:FILE",
                          help="initial relation contents (integer CSV)")
    p_stream.add_argument("--view", action="append", default=[],
                          metavar="NAME=R1,R2,...",
                          help="live join view over registered relations")
    p_stream.add_argument("--log", required=True,
                          help="update log (+R 1,2 / -S 2,3 / commit lines)")
    p_stream.add_argument("--gao", help="comma-separated attribute order "
                          "(applied to every view; default: auto)")
    p_stream.add_argument("--memtable-limit", type=int,
                          help="auto-flush memtables at this many entries")
    p_stream.add_argument("--compact-every", type=int, metavar="N",
                          help="compact all relations every N batches")
    p_stream.add_argument("--strict", action="store_true",
                          help="discard (with a warning) a trailing batch "
                          "with no 'commit' line instead of applying it — "
                          "the producer may have died mid-batch")
    p_stream.add_argument("--no-recompute", action="store_true",
                          help="skip the per-batch full-recompute comparator")
    p_stream.add_argument("--print-rows", action="store_true",
                          help="print final view rows after the replay")
    _add_parallel_flags(p_stream)
    _add_cds_backend_flag(p_stream)
    p_stream.set_defaults(func=_cmd_stream)

    p_query = sub.add_parser(
        "query",
        help="plan + execute a conjunctive query text (serving layer)",
    )
    p_query.add_argument("text", nargs="?",
                         help='query text, e.g. "Q(x,z) :- R(x,y), S(y,z)"')
    p_query.add_argument("--relation", action="append", default=[],
                         metavar="NAME=A,B:FILE",
                         help="relation contents (integer CSV)")
    p_query.add_argument(
        "--explain",
        action="store_true",
        help="print the plan scoreboard (candidates + certificate "
        "estimates + winner rationale) instead of executing",
    )
    p_query.add_argument(
        "--repl",
        action="store_true",
        help="read statements (queries, +R/-R updates, commit, CREATE, "
        "EXPLAIN, STATS, TRACE ON/OFF) from stdin",
    )
    p_query.add_argument(
        "--trace",
        action="store_true",
        help="span-trace the execution and print the per-stage tree "
        "(plan, cache outcome, engine, per-shard) with op counts — "
        "the EXPLAIN ANALYZE view",
    )
    _add_planner_flags(p_query)
    p_query.set_defaults(func=_cmd_query)

    p_serve = sub.add_parser(
        "serve",
        help="replay a script of mixed DDL/updates/queries (batch "
        "serving), or host the multi-tenant HTTP server (--http)",
    )
    p_serve.add_argument("--script",
                         help="script file (see repro.serve.script); "
                         "required unless --http")
    p_serve.add_argument("--http", action="store_true",
                         help="serve HTTP instead of replaying a script "
                         "(see repro.net: /v1/query|prepare|update|"
                         "script, /healthz, /stats, /metrics)")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address with --http (default "
                         "127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=0, metavar="P",
                         help="TCP port with --http (default 0 = "
                         "ephemeral; the bound port is printed)")
    p_serve.add_argument("--tenant", action="append", default=[],
                         metavar="ID[,k=v...]", dest="tenants",
                         help="tenant to host (repeatable; default one "
                         "tenant 'default'); per-tenant QoS overrides "
                         "as key=value pairs: max_ops, deadline_ms, "
                         "max_rows, pool_size, queue_depth")
    p_serve.add_argument("--pool-size", type=int, default=4, metavar="N",
                         help="sessions per tenant pool with --http "
                         "(default 4; per-tenant override wins)")
    p_serve.add_argument("--queue-depth", type=int, default=64,
                         metavar="N",
                         help="ingest queue capacity per tenant with "
                         "--http; a full queue rejects updates with "
                         "HTTP 429 (default 64)")
    p_serve.add_argument("--cache-capacity", type=int, default=512,
                         metavar="N",
                         help="process-wide shared plan-cache entries "
                         "with --http (default 512)")
    p_serve.add_argument("--relation", action="append", default=[],
                         metavar="NAME=A,B:FILE",
                         help="preloaded relation contents (integer CSV)")
    p_serve.add_argument("--data-dir", metavar="DIR",
                         help="durable catalog directory: recover state "
                         "from it first, journal every mutation to its WAL")
    p_serve.add_argument("--fsync", default="batch",
                         choices=["always", "batch", "off"],
                         help="WAL sync policy with --data-dir: fsync every "
                         "commit / flush per commit + fsync on rotate and "
                         "close / flush only (default: batch)")
    p_serve.add_argument("--snapshot-on-exit", action="store_true",
                         help="persist a snapshot and trim covered WAL "
                         "segments after the script finishes")
    p_serve.add_argument("--trace", action="store_true",
                         help="span-trace every statement; each query's "
                         "transcript lines include its stage tree")
    p_serve.add_argument("--metrics-dir", metavar="DIR",
                         help="after the script, dump metrics.json, "
                         "metrics.prom (Prometheus text exposition), "
                         "spans.jsonl, and slow_queries.jsonl into DIR "
                         "(implies tracing)")
    p_serve.add_argument("--slow-query-ms", type=float, metavar="MS",
                         help="record queries slower than MS in the "
                         "slow-query log (STATS counts them; "
                         "--metrics-dir dumps them)")
    _add_planner_flags(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_client = sub.add_parser(
        "client",
        help="HTTP client for `repro serve --http` (scripted "
        "round-trips; policy aborts exit 4 like the in-process CLI)",
    )
    p_client.add_argument(
        "action",
        choices=["query", "prepare", "update", "script", "stats",
                 "metrics", "health", "shutdown"],
        help="what to do against the server",
    )
    p_client.add_argument(
        "arg", nargs="?",
        help="query text (query/prepare), update lines — "
        "';'-separated or @FILE (update), or script path (script)",
    )
    p_client.add_argument("--url", default="http://127.0.0.1:8765",
                          help="server base URL (default "
                          "http://127.0.0.1:8765)")
    p_client.add_argument("--tenant", default="default",
                          help="tenant id (default 'default')")
    p_client.add_argument("--timeout", type=float, default=30.0,
                          metavar="S", help="request timeout seconds")
    p_client.add_argument("--sync", action="store_true",
                          help="apply updates synchronously instead of "
                          "enqueueing (update)")
    p_client.add_argument("--max-ops", type=int, metavar="N",
                          help="per-request budget override (query; "
                          "can only tighten the tenant QoS)")
    p_client.add_argument("--deadline-ms", type=int, metavar="MS",
                          help="per-request deadline override (query)")
    p_client.add_argument("--max-rows", type=int, metavar="N",
                          help="per-request row-cap override (query)")
    p_client.set_defaults(func=_cmd_client)

    p_recover = sub.add_parser(
        "recover",
        help="rebuild catalog state from a data directory (snapshot + WAL)",
    )
    p_recover.add_argument("--data-dir", required=True, metavar="DIR")
    p_recover.add_argument("--fsync", default="batch",
                           choices=["always", "batch", "off"])
    p_recover.add_argument(
        "--snapshot", action="store_true",
        help="persist the recovered state as a fresh snapshot and delete "
        "the WAL segments it covers (bounds future recovery time)",
    )
    p_recover.add_argument(
        "--no-verify", action="store_true",
        help="skip Merkle-root verification of the snapshot being loaded",
    )
    p_recover.set_defaults(func=_cmd_recover)

    p_verify = sub.add_parser(
        "verify-state",
        help="audit a data directory: hashes, Merkle roots, WAL integrity",
    )
    p_verify.add_argument("--data-dir", required=True, metavar="DIR")
    p_verify.set_defaults(func=_cmd_verify_state)

    p_lint = sub.add_parser(
        "lint",
        help="static analysis: layering, counters, crashpoints, WAL "
        "order, determinism, payloads, typing ratchet",
    )
    p_lint.add_argument(
        "--root", default=".", metavar="DIR",
        help="repo root containing src/repro (default: cwd)",
    )
    p_lint.add_argument(
        "--json", action="store_true",
        help="emit the full machine-readable report instead of the table",
    )
    p_lint.add_argument(
        "--update-baseline", action="store_true",
        help="pin the current findings as the new baseline (ratchet)",
    )
    p_lint.add_argument(
        "--baseline", metavar="FILE",
        help="baseline file "
        "(default: <root>/benchmarks/baselines/lint_baseline.json)",
    )
    p_lint.set_defaults(func=_cmd_lint)

    p_bench = sub.add_parser("bench", help="run the benchmark suite")
    p_bench.add_argument(
        "--smoke",
        action="store_true",
        help="tiny inputs, one round each: exercise the perf plumbing only",
    )
    p_bench.add_argument(
        "-k", dest="keyword", help="only benchmark files whose name contains this"
    )
    p_bench.add_argument(
        "--benchmark-json",
        help="write pytest-benchmark JSON here (disables --benchmark-disable)",
    )
    p_bench.add_argument(
        "--profile",
        action="store_true",
        help="cProfile the workload registry instead of running pytest: "
        "top-N hot functions per workload (see --top), so perf claims "
        "are reproducible from the CLI",
    )
    p_bench.add_argument(
        "--top", type=int, default=15,
        help="rows of cProfile output per workload (with --profile)",
    )
    p_bench.add_argument(
        "names", nargs="*",
        help="workload-registry names for --profile (default: all)",
    )
    p_bench.set_defaults(func=_cmd_bench)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    from repro.core.resilience import ExecutionError
    from repro.testing.faults import InjectedCrash, install_from_env

    parser = build_parser()
    args = parser.parse_args(argv)
    # The recover-smoke arms a crash point via REPRO_CRASH_POINT; the
    # distinct exit code lets it tell an injected death (expected) from
    # a real failure.
    install_from_env()
    try:
        return args.func(args)
    except InjectedCrash as exc:
        print(f"# {exc}", file=sys.stderr)
        return 3
    except ExecutionError as exc:
        # Typed policy aborts (BudgetExceeded / QueryTimeout /
        # ShardFailure) get their own exit code so harnesses can tell
        # "the budget fired as designed" from a real failure.
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 4


if __name__ == "__main__":
    raise SystemExit(main())
