"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiments [names...]``
    Rerun the paper's experiments and print their tables (see
    EXPERIMENTS.md; default: all).

``join --relation NAME=ATTRS:FILE [...]``
    Evaluate a natural join over integer-CSV relations with Minesweeper
    (or a baseline engine) and print rows plus instrumentation.

``gao-search --relation ...``
    Measure candidate attribute orders and report the cheapest
    (the paper's §7 future-work direction, executable).

``certificate --relation ...``
    Run the Proposition-2.5 recorder: extract the comparisons the engine
    performs and check them with the randomized Definition-2.3 refuter.

``bench [--smoke]``
    Run the benchmark suite under pytest.  ``--smoke`` runs every
    benchmark once with tiny inputs (sets ``REPRO_BENCH_SMOKE=1``) so CI
    exercises the perf plumbing without timing noise; ``make bench-smoke``
    is the same entry point.

Relation files are headerless CSVs of integers, one tuple per line.
"""

from __future__ import annotations

import argparse
import glob
import os
import sys
from typing import Sequence

from repro.core.engine import join
from repro.core.gao_search import search_gao
from repro.core.query import Query
from repro.storage.relation import Relation


def _load_relation(spec: str) -> Relation:
    """Parse ``NAME=A,B:path.csv`` into a Relation.

    Non-integer columns are dictionary-encoded (order-preserving) via
    :mod:`repro.io`; output rows then show the integer codes.
    """
    from repro.io import load_csv

    try:
        name, rest = spec.split("=", 1)
        attrs_text, path = rest.split(":", 1)
    except ValueError:
        raise SystemExit(
            f"bad --relation spec {spec!r}; expected NAME=A,B:file.csv"
        )
    attributes = [a.strip() for a in attrs_text.split(",") if a.strip()]
    try:
        relation, _ = load_csv(path, name.strip(), attributes=attributes)
    except OSError as exc:
        raise SystemExit(f"cannot read {path}: {exc}")
    except ValueError as exc:
        raise SystemExit(f"{path}: {exc}")
    return relation


def _build_query(specs: Sequence[str]) -> Query:
    if not specs:
        raise SystemExit("at least one --relation is required")
    return Query([_load_relation(spec) for spec in specs])


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.runners import RUNNERS, format_table

    names = args.names or sorted(RUNNERS)
    unknown = [n for n in names if n not in RUNNERS]
    if unknown:
        raise SystemExit(
            f"unknown experiments {unknown}; available: {sorted(RUNNERS)}"
        )
    for name in names:
        print(format_table(RUNNERS[name]()))
        print()
    return 0


def _cmd_join(args: argparse.Namespace) -> int:
    query = _build_query(args.relation)
    gao = args.gao.split(",") if args.gao else None
    if args.explain:
        from repro.core.explain import explain, format_explanation

        print(format_explanation(explain(query, gao=gao, dry_run=True)))
        return 0
    if args.engine == "minesweeper":
        result = join(query, gao=gao)
        rows, stats = result.rows, result.stats()
        used_gao = list(result.gao)
    else:
        if gao is None:
            gao, _ = query.choose_gao()
        prepared = query.with_gao(gao)
        used_gao = gao
        if args.engine == "leapfrog":
            from repro.baselines.leapfrog import leapfrog_triejoin

            rows = leapfrog_triejoin(prepared)
        elif args.engine == "generic":
            from repro.baselines.generic_join import generic_join

            rows = generic_join(prepared)
        elif args.engine == "yannakakis":
            from repro.baselines.yannakakis import yannakakis_join

            rows = yannakakis_join(query, gao)
        else:
            raise SystemExit(f"unknown engine {args.engine!r}")
        stats = prepared.counters.snapshot()
    print(f"# GAO: {','.join(used_gao)}")
    for row in rows:
        print(",".join(map(str, row)))
    print(f"# {len(rows)} rows", file=sys.stderr)
    for key, value in stats.items():
        if value:
            print(f"# {key}: {value}", file=sys.stderr)
    return 0


def _cmd_gao_search(args: argparse.Namespace) -> int:
    query = _build_query(args.relation)
    result = search_gao(query, samples=args.samples)
    print(f"best GAO: {','.join(result.best_gao)}  "
          f"(certificate estimate {result.best_estimate})")
    for order, estimate in result.scoreboard[: args.top]:
        print(f"  {','.join(order):30s} {estimate}")
    return 0


def _cmd_certificate(args: argparse.Namespace) -> int:
    from repro.certificates.recorder import record_certificate
    from repro.certificates.verifier import check_certificate

    query = _build_query(args.relation)
    gao = args.gao.split(",") if args.gao else query.choose_gao()[0]
    prepared = query.with_gao(gao)
    rows, argument = record_certificate(prepared)
    print(f"# output rows: {len(rows)}")
    print(f"# recorded comparisons: {len(argument)}")
    counterexample = check_certificate(
        prepared, argument, samples=args.samples
    )
    if counterexample is None:
        print("# certificate check: PASSED (no refuting instance found)")
        return 0
    print("# certificate check: REFUTED")
    return 1


def _find_benchmarks_dir() -> str:
    """Locate the repo's ``benchmarks/`` directory (cwd, then checkout)."""
    here = os.path.dirname(os.path.abspath(__file__))
    candidates = [
        os.getcwd(),
        os.path.abspath(os.path.join(here, "..", "..")),  # <repo>/src/repro
    ]
    for root in candidates:
        bench_dir = os.path.join(root, "benchmarks")
        if os.path.isdir(bench_dir) and glob.glob(
            os.path.join(bench_dir, "bench_*.py")
        ):
            return bench_dir
    raise SystemExit(
        "cannot locate the benchmarks/ directory; run from the repo root"
    )


def _cmd_bench(args: argparse.Namespace) -> int:
    import subprocess

    bench_dir = _find_benchmarks_dir()
    root = os.path.dirname(bench_dir)
    files = sorted(glob.glob(os.path.join(bench_dir, "bench_*.py")))
    if args.keyword:
        files = [f for f in files if args.keyword in os.path.basename(f)]
        if not files:
            raise SystemExit(f"no benchmark file matches {args.keyword!r}")
    env = dict(os.environ)
    src = os.path.join(root, "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    if args.smoke:
        env["REPRO_BENCH_SMOKE"] = "1"
    cmd = [sys.executable, "-m", "pytest", "-q", *files]
    if args.benchmark_json:
        cmd.append(f"--benchmark-json={args.benchmark_json}")
    else:
        cmd.append("--benchmark-disable")
    return subprocess.call(cmd, cwd=root, env=env)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Minesweeper joins (PODS 2014 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiments", help="rerun paper experiments")
    p_exp.add_argument("names", nargs="*", help="experiment names (default all)")
    p_exp.set_defaults(func=_cmd_experiments)

    p_join = sub.add_parser("join", help="evaluate a natural join")
    p_join.add_argument("--relation", action="append", default=[],
                        metavar="NAME=A,B:FILE")
    p_join.add_argument("--gao", help="comma-separated attribute order")
    p_join.add_argument(
        "--engine",
        default="minesweeper",
        choices=["minesweeper", "leapfrog", "generic", "yannakakis"],
    )
    p_join.add_argument(
        "--explain",
        action="store_true",
        help="print the structural analysis + measured |C| instead of rows",
    )
    p_join.set_defaults(func=_cmd_join)

    p_gao = sub.add_parser("gao-search", help="find a cheap attribute order")
    p_gao.add_argument("--relation", action="append", default=[],
                       metavar="NAME=A,B:FILE")
    p_gao.add_argument("--samples", type=int, default=12)
    p_gao.add_argument("--top", type=int, default=5)
    p_gao.set_defaults(func=_cmd_gao_search)

    p_cert = sub.add_parser(
        "certificate", help="record and check a run's comparisons"
    )
    p_cert.add_argument("--relation", action="append", default=[],
                        metavar="NAME=A,B:FILE")
    p_cert.add_argument("--gao", help="comma-separated attribute order")
    p_cert.add_argument("--samples", type=int, default=20)
    p_cert.set_defaults(func=_cmd_certificate)

    p_bench = sub.add_parser("bench", help="run the benchmark suite")
    p_bench.add_argument(
        "--smoke",
        action="store_true",
        help="tiny inputs, one round each: exercise the perf plumbing only",
    )
    p_bench.add_argument(
        "-k", dest="keyword", help="only benchmark files whose name contains this"
    )
    p_bench.add_argument(
        "--benchmark-json",
        help="write pytest-benchmark JSON here (disables --benchmark-disable)",
    )
    p_bench.set_defaults(func=_cmd_bench)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
