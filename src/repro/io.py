"""Loading and saving relations (CSV / TSV / JSON / edge lists).

The library's value domain is integers; these helpers get tabular data
into :class:`~repro.storage.relation.Relation` objects, with a string
dictionary for non-integer columns (dictionary encoding is how ordered
indexes over strings work in practice — the paper's order-based model
only needs a total order, which the encoding preserves per column when
built from sorted distinct values).
"""

from __future__ import annotations

import csv
import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.storage.relation import Relation


class Dictionary:
    """An order-preserving string-to-int dictionary for one column."""

    def __init__(self, values: Iterable[str]) -> None:
        self._values: List[str] = sorted(set(values))
        self._codes: Dict[str, int] = {
            v: i for i, v in enumerate(self._values)
        }

    def __len__(self) -> int:
        return len(self._values)

    def encode(self, value: str) -> int:
        return self._codes[value]

    def decode(self, code: int) -> str:
        return self._values[code]


def relation_from_rows(
    name: str,
    attributes: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> Tuple[Relation, Dict[str, Dictionary]]:
    """Build a relation, dictionary-encoding any non-integer columns.

    Returns ``(relation, dictionaries)`` where ``dictionaries`` maps the
    encoded attributes' names to their :class:`Dictionary`.
    """
    materialized = [tuple(row) for row in rows]
    for row in materialized:
        if len(row) != len(attributes):
            raise ValueError(
                f"row {row!r} does not match attributes {list(attributes)}"
            )
    dictionaries: Dict[str, Dictionary] = {}
    columns: List[List[object]] = list(map(list, zip(*materialized))) if materialized else [
        [] for _ in attributes
    ]
    encoded_columns: List[List[int]] = []
    for attr, column in zip(attributes, columns):
        if all(isinstance(v, int) and not isinstance(v, bool) for v in column):
            encoded_columns.append(list(column))  # type: ignore[arg-type]
            continue
        dictionary = Dictionary(str(v) for v in column)
        dictionaries[attr] = dictionary
        encoded_columns.append([dictionary.encode(str(v)) for v in column])
    encoded_rows = list(zip(*encoded_columns)) if materialized else []
    return Relation(name, attributes, encoded_rows), dictionaries


def load_csv(
    path: str,
    name: str,
    attributes: Optional[Sequence[str]] = None,
    delimiter: str = ",",
    header: bool = False,
) -> Tuple[Relation, Dict[str, Dictionary]]:
    """Load a relation from a delimited text file.

    With ``header=True`` the first line names the attributes (overridden
    by an explicit ``attributes``).  Integer-looking cells are parsed as
    ints; other columns are dictionary-encoded.
    """
    with open(path, newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        rows = [row for row in reader if row]
    if header:
        first = rows.pop(0)
        if attributes is None:
            attributes = [cell.strip() for cell in first]
    if attributes is None:
        width = len(rows[0]) if rows else 0
        attributes = [f"col{i}" for i in range(width)]

    def parse(cell: str) -> object:
        text = cell.strip()
        try:
            return int(text)
        except ValueError:
            return text

    parsed = [[parse(cell) for cell in row] for row in rows]
    return relation_from_rows(name, attributes, parsed)


def load_json(path: str, name: str) -> Tuple[Relation, Dict[str, Dictionary]]:
    """Load ``{"attributes": [...], "rows": [[...], ...]}`` JSON."""
    with open(path) as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "attributes" not in payload:
        raise ValueError(f"{path}: expected an object with 'attributes'/'rows'")
    return relation_from_rows(
        name, payload["attributes"], payload.get("rows", [])
    )


def load_edge_list(
    path: str,
    name: str,
    attributes: Sequence[str] = ("src", "dst"),
) -> Tuple[Relation, Dict[str, Dictionary]]:
    """Load a whitespace-separated edge list (SNAP format, '#' comments)."""
    rows: List[List[object]] = []
    with open(path) as handle:
        for line in handle:
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            parts = text.split()
            if len(parts) != len(attributes):
                raise ValueError(f"{path}: bad edge line {text!r}")
            rows.append(
                [int(p) if p.lstrip("-").isdigit() else p for p in parts]
            )
    return relation_from_rows(name, attributes, rows)


def save_rows(path: str, rows: Iterable[Sequence[int]]) -> None:
    """Write result tuples as CSV."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        for row in rows:
            writer.writerow(row)
