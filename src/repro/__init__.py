"""repro — a reproduction of "Beyond Worst-case Analysis for Joins with
Minesweeper" (Ngo, Nguyen, Ré, Rudra; PODS 2014).

Public API highlights
---------------------
``repro.Relation``            an indexed relation (GAO-consistent trie)
``repro.Query``               a natural-join query
``repro.join``                evaluate with Minesweeper (auto GAO/strategy)
``repro.naive_join``          ground-truth evaluation
``repro.baselines``           Yannakakis, Leapfrog Triejoin, generic join, ...
``repro.certificates``        certificate construction and verification
``repro.datasets``            paper instance families and synthetic graphs
``repro.dynamic``             writable relations, live views, streaming
``repro.parallel``            sharded parallel execution (ShardedExecutor)
``repro.lang``                conjunctive-query text syntax (parse/lower)
``repro.planner``             cost-based plans + plan cache
``repro.serve``               sessions, prepared statements, script replay
"""

from repro.core import (
    Constraint,
    explain,
    search_gao,
    JoinResult,
    LiveJoin,
    Minesweeper,
    PreparedQuery,
    Query,
    WILDCARD,
    join,
    minesweeper_join,
    naive_join,
)
from repro.dynamic import Catalog, Update
from repro.lang import parse
from repro.parallel import ShardedExecutor
from repro.planner import Plan, PlanCache, Planner
from repro.serve import Session
from repro.storage import (
    BTree,
    DeltaRelation,
    FlatTrieRelation,
    IntervalList,
    Relation,
    SortedList,
    TrieRelation,
)
from repro.util import NEG_INF, POS_INF, NullCounters, OpCounters

__version__ = "1.0.0"

__all__ = [
    "Constraint",
    "explain",
    "search_gao",
    "JoinResult",
    "LiveJoin",
    "Minesweeper",
    "PreparedQuery",
    "Query",
    "WILDCARD",
    "join",
    "minesweeper_join",
    "naive_join",
    "BTree",
    "Catalog",
    "DeltaRelation",
    "FlatTrieRelation",
    "IntervalList",
    "Plan",
    "PlanCache",
    "Planner",
    "Relation",
    "Session",
    "ShardedExecutor",
    "parse",
    "SortedList",
    "TrieRelation",
    "Update",
    "NEG_INF",
    "POS_INF",
    "NullCounters",
    "OpCounters",
    "__version__",
]
