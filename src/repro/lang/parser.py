"""Parser for the conjunctive-query text syntax.

Grammar (whitespace-insensitive; ``#`` starts a comment)::

    statement :=  head ":-" body
    head      :=  RELNAME "(" head_terms ")"
    head_terms:=  aggregate | VAR ("," VAR)*
    aggregate :=  "COUNT" | ("MIN" | "MAX") "(" VAR ")"
    body      :=  atom ("," atom)*
    atom      :=  RELNAME "(" VAR ("," VAR)* ")"

Lexical conventions (Datalog-style): relation names start with an
uppercase letter (``R``, ``Follows``); variables start with a lowercase
letter or underscore (``x``, ``_tmp``).  ``COUNT`` / ``MIN`` / ``MAX``
are reserved head keywords.  Constants are deliberately not part of the
language (the engines join over dictionary-encoded integers; encode
selections as unary relations instead), and a variable may not repeat
within a single atom — both are rejected with a pointed message rather
than silently mis-evaluated.

Shape validation happens here (no schema needed): distinct head
variables, head variables bound in the body (safety), aggregate
variable bound in the body, no duplicate atoms.  Schema validation
(unknown relation, arity mismatch) happens at lowering against a
catalog — see :mod:`repro.lang.lower`.
"""

from __future__ import annotations

import re
from typing import List, NamedTuple, Optional, Tuple

from repro.lang.ast import (
    AGGREGATES,
    Aggregate,
    Atom,
    ParseError,
    QueryStatement,
)


class _Token(NamedTuple):
    kind: str  # NAME / VAR / PUNCT
    text: str
    pos: int


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*)
  | (?P<implies>:-)
  | (?P<punct>[(),])
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<number>\d+)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(
                f"unexpected character {text[pos]!r} at position {pos}"
            )
        pos = match.end()
        if match.lastgroup in ("ws", "comment"):
            continue
        if match.lastgroup == "number":
            raise ParseError(
                f"constant {match.group()!r} at position {match.start()}: "
                "constants are not part of the query language (encode the "
                "selection as a unary relation)"
            )
        kind = "IMPLIES" if match.lastgroup == "implies" else (
            "PUNCT" if match.lastgroup == "punct" else "NAME"
        )
        tokens.append(_Token(kind, match.group(), match.start()))
    return tokens


def _is_relation_name(text: str) -> bool:
    return text[0].isupper()


def _is_variable(text: str) -> bool:
    return text[0].islower() or text[0] == "_"


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.i = 0

    # -- token plumbing -------------------------------------------------

    def _peek(self) -> Optional[_Token]:
        return self.tokens[self.i] if self.i < len(self.tokens) else None

    def _next(self, expected: str) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError(f"unexpected end of query; expected {expected}")
        self.i += 1
        return token

    def _expect(self, text: str) -> _Token:
        token = self._next(repr(text))
        if token.text != text:
            raise ParseError(
                f"expected {text!r} at position {token.pos}, "
                f"got {token.text!r}"
            )
        return token

    def _variable(self, where: str) -> str:
        token = self._next("a variable")
        if token.kind != "NAME" or not _is_variable(token.text):
            raise ParseError(
                f"expected a variable (lowercase identifier) {where}, "
                f"got {token.text!r} at position {token.pos}"
            )
        if token.text.upper() in AGGREGATES:
            raise ParseError(
                f"{token.text!r} at position {token.pos} collides with an "
                "aggregate keyword"
            )
        return token.text

    # -- grammar --------------------------------------------------------

    def statement(self) -> QueryStatement:
        head_name, head_vars, aggregate = self._head()
        self._expect(":-")
        body = self._body()
        trailing = self._peek()
        if trailing is not None:
            raise ParseError(
                f"trailing input {trailing.text!r} at position "
                f"{trailing.pos}"
            )
        return self._validated(head_name, head_vars, aggregate, body)

    def _head(self) -> Tuple[str, Tuple[str, ...], Optional[Aggregate]]:
        token = self._next("a head name")
        if token.kind != "NAME" or not _is_relation_name(token.text):
            raise ParseError(
                f"expected a head name (capitalized identifier), got "
                f"{token.text!r} at position {token.pos}"
            )
        head_name = token.text
        self._expect("(")
        first = self._peek()
        if first is not None and first.text in AGGREGATES:
            aggregate = self._aggregate()
            self._expect(")")
            return head_name, (), aggregate
        head_vars = [self._variable("in the head")]
        while self._peek() is not None and self._peek().text == ",":
            self._expect(",")
            head_vars.append(self._variable("in the head"))
        self._expect(")")
        return head_name, tuple(head_vars), None

    def _aggregate(self) -> Aggregate:
        token = self._next("an aggregate")
        func = token.text
        if func == "COUNT":
            # optional COUNT(*)-less form: bare COUNT
            return Aggregate("COUNT", None)
        self._expect("(")
        var = self._variable(f"inside {func}(...)")
        self._expect(")")
        return Aggregate(func, var)

    def _body(self) -> Tuple[Atom, ...]:
        atoms = [self._atom()]
        while self._peek() is not None and self._peek().text == ",":
            self._expect(",")
            atoms.append(self._atom())
        return tuple(atoms)

    def _atom(self) -> Atom:
        token = self._next("a relation name")
        if token.kind != "NAME" or not _is_relation_name(token.text):
            raise ParseError(
                f"expected a relation name (capitalized identifier), got "
                f"{token.text!r} at position {token.pos}"
            )
        if token.text in AGGREGATES:
            raise ParseError(
                f"aggregate keyword {token.text!r} cannot be used as a "
                f"relation name (position {token.pos})"
            )
        name = token.text
        self._expect("(")
        args = [self._variable(f"in atom {name}")]
        while self._peek() is not None and self._peek().text == ",":
            self._expect(",")
            args.append(self._variable(f"in atom {name}"))
        self._expect(")")
        return Atom(name, tuple(args))

    # -- shape validation ----------------------------------------------

    def _validated(
        self,
        head_name: str,
        head_vars: Tuple[str, ...],
        aggregate: Optional[Aggregate],
        body: Tuple[Atom, ...],
    ) -> QueryStatement:
        seen_atoms = set()
        for atom in body:
            if len(set(atom.args)) != len(atom.args):
                raise ParseError(
                    f"variable repeated within atom {atom.unparse()}; "
                    "within-atom equality is not supported (join a "
                    "renamed copy instead)"
                )
            key = (atom.relation, atom.args)
            if key in seen_atoms:
                raise ParseError(
                    f"duplicate atom {atom.unparse()} in the body"
                )
            seen_atoms.add(key)
        statement = QueryStatement(
            head_name=head_name,
            head_vars=head_vars,
            aggregate=aggregate,
            body=body,
        )
        bound = set(statement.variables())
        if len(set(head_vars)) != len(head_vars):
            raise ParseError(
                f"variable repeated in the head {head_name}"
                f"({', '.join(head_vars)})"
            )
        unsafe = [v for v in head_vars if v not in bound]
        if unsafe:
            raise ParseError(
                f"unsafe head variable(s) {unsafe}: every head variable "
                "must appear in the body"
            )
        if aggregate is not None and aggregate.var is not None:
            if aggregate.var not in bound:
                raise ParseError(
                    f"unsafe aggregate variable {aggregate.var!r}: it "
                    "must appear in the body"
                )
        return statement


def parse(text: str) -> QueryStatement:
    """Parse one conjunctive-query statement.

    Raises :class:`~repro.lang.ast.ParseError` (a ``ValueError``) with
    a position-annotated message on malformed input.
    """
    if not text or not text.strip():
        raise ParseError("empty query")
    return _Parser(text).statement()


def is_query_text(line: str) -> bool:
    """Cheap test used by the script runner to route a line: a query
    statement is the only line kind containing ``:-``."""
    return ":-" in line
