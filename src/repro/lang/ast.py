"""AST for the conjunctive-query text syntax.

A statement is a rule-shaped conjunctive query::

    Q(x, z)  :- R(x, y), S(y, z)      # projection head
    Q(COUNT) :- R(x, y), S(y, z)      # aggregate head
    Q(MIN(x)) :- R(x, y)              # MIN / MAX over one variable

The head is either a (possibly empty-projection-free) list of distinct
body variables, or exactly one aggregate term.  The body is a
conjunction of atoms over catalog relations; repeating a relation name
is allowed (self-joins) and resolved to distinct atom aliases at
lowering time.

Two derived forms matter downstream:

* :meth:`QueryStatement.unparse` — the canonical text rendering, which
  re-parses to an equal AST (round-trip property, tested);
* :meth:`QueryStatement.signature` — a *renaming-invariant* cache key:
  statements that differ only in variable names (or head name, or
  whitespace) share a signature, so the plan cache serves all of them
  from one entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Aggregate function names accepted in heads.
AGGREGATES = ("COUNT", "MIN", "MAX")


class QueryError(ValueError):
    """Base for everything the frontend can reject."""


class ParseError(QueryError):
    """The text does not parse, or the parsed statement is malformed."""


class ValidationError(QueryError):
    """The statement does not fit the catalog (unknown relation, arity)."""


@dataclass(frozen=True)
class Atom:
    """One body conjunct: a relation name applied to variables."""

    relation: str
    args: Tuple[str, ...]

    def unparse(self) -> str:
        return f"{self.relation}({', '.join(self.args)})"


@dataclass(frozen=True)
class Aggregate:
    """An aggregate head term: COUNT, or MIN/MAX over one variable."""

    func: str  # one of AGGREGATES
    var: Optional[str] = None  # None for COUNT

    def unparse(self) -> str:
        return self.func if self.var is None else f"{self.func}({self.var})"


@dataclass(frozen=True)
class QueryStatement:
    """A parsed (and shape-validated) conjunctive query."""

    head_name: str
    head_vars: Tuple[str, ...]  # empty iff aggregate is set
    aggregate: Optional[Aggregate]
    body: Tuple[Atom, ...]

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    def variables(self) -> List[str]:
        """All body variables, in first-appearance order."""
        seen: List[str] = []
        for atom in self.body:
            for v in atom.args:
                if v not in seen:
                    seen.append(v)
        return seen

    def is_aggregate(self) -> bool:
        return self.aggregate is not None

    def is_full_head(self) -> bool:
        """True iff the head lists every body variable (no projection)."""
        return (
            self.aggregate is None
            and set(self.head_vars) == set(self.variables())
        )

    # ------------------------------------------------------------------
    # Text renderings
    # ------------------------------------------------------------------

    def unparse(self) -> str:
        """Canonical text form; ``parse(unparse(q)) == q``."""
        if self.aggregate is not None:
            head_terms = self.aggregate.unparse()
        else:
            head_terms = ", ".join(self.head_vars)
        body = ", ".join(atom.unparse() for atom in self.body)
        return f"{self.head_name}({head_terms}) :- {body}"

    def signature(self) -> str:
        """Renaming-invariant cache key.

        Variables are canonicalized to ``v0, v1, ...`` by first
        appearance in the body, and the head name to ``_`` — so the
        signature depends only on the join structure, the projection /
        aggregate shape, and the relation names.  Atom order is part of
        the key: it is already canonical in the text, and keeping it
        significant makes the mapping trivially injective.
        """
        renamed = self.canonicalize()
        return renamed.unparse()

    def canonical_rename(self) -> Dict[str, str]:
        """Canonical name -> this statement's variable (``v0`` → ``x``).

        The inverse of :meth:`canonicalize`'s renaming.  Load-bearing
        for the plan cache: plans are stored in canonical variable
        space and every statement sharing the signature localizes them
        through this mapping, so it must stay in lock-step with
        ``canonicalize`` (both key off body first-appearance order).
        """
        return {f"v{i}": v for i, v in enumerate(self.variables())}

    def canonicalize(self) -> "QueryStatement":
        """The statement with canonical variable names and head name."""
        mapping: Dict[str, str] = {}
        for v in self.variables():
            mapping[v] = f"v{len(mapping)}"
        body = tuple(
            Atom(atom.relation, tuple(mapping[v] for v in atom.args))
            for atom in self.body
        )
        aggregate = self.aggregate
        if aggregate is not None and aggregate.var is not None:
            aggregate = Aggregate(aggregate.func, mapping[aggregate.var])
        return QueryStatement(
            head_name="_",
            head_vars=tuple(mapping[v] for v in self.head_vars),
            aggregate=aggregate,
            body=body,
        )

    def __str__(self) -> str:
        return self.unparse()
