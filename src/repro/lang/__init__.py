"""Query frontend: text syntax -> validated AST -> core ``Query``.

The first layer of the query subsystem (ISSUE 5): :func:`parse` turns
``Q(x, z) :- R(x, y), S(y, z)`` into a :class:`QueryStatement`,
:func:`lower` binds it against a catalog (or a plain relation mapping),
and :meth:`QueryStatement.signature` gives the renaming-invariant key
the plan cache uses.  See :mod:`repro.planner` for planning and
:mod:`repro.serve` for the session/serving layer on top.
"""

from repro.lang.ast import (
    AGGREGATES,
    Aggregate,
    Atom,
    ParseError,
    QueryError,
    QueryStatement,
    ValidationError,
)
from repro.lang.lower import LoweredQuery, lower, validate
from repro.lang.parser import is_query_text, parse

__all__ = [
    "AGGREGATES",
    "Aggregate",
    "Atom",
    "LoweredQuery",
    "ParseError",
    "QueryError",
    "QueryStatement",
    "ValidationError",
    "is_query_text",
    "lower",
    "parse",
    "validate",
]
