"""Lowering: a validated AST onto the ``Query``/``Relation`` layer.

The statement's atoms are bound to stored relations from a *source* —
a :class:`repro.dynamic.catalog.Catalog` or a plain mapping of name →
:class:`~repro.storage.relation.Relation`.  Each atom becomes a
``Relation`` wrapper that

* shares the stored relation's (possibly live LSM) index — no copy, so
  a catalog-backed query always sees current data, and
* renames the attributes to the atom's *variables*, which is what makes
  the natural join of the lowered query compute the conjunctive query.

Self-joins work by aliasing: a relation appearing in several atoms gets
distinct atom names (``R``, ``R__2``, ...) so the core ``Query`` (which
requires unique atom names) accepts the result.

Schema errors — unknown relation, arity mismatch — are raised here as
:class:`~repro.lang.ast.ValidationError`, separately from the parser's
shape errors, so callers can distinguish "bad query text" from "query
does not fit this catalog".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple, Union

from repro.core.query import Query
from repro.lang.ast import QueryStatement, ValidationError
from repro.storage.relation import Relation


#: Anything atoms can be bound against.
SchemaSource = Union["Catalog", Mapping[str, Relation]]


def _resolve(source, name: str):
    """The stored Relation for ``name``, or None."""
    if hasattr(source, "relation"):  # Catalog-like
        try:
            return source.relation(name)
        except KeyError:
            return None
    return source.get(name)


def validate(statement: QueryStatement, source) -> None:
    """Check the statement against the source's schemas.

    Raises :class:`ValidationError` on the first unknown relation or
    atom/relation arity mismatch.  Cheap (no index access), so the
    serving layer runs it at ``prepare`` time.
    """
    for atom in statement.body:
        stored = _resolve(source, atom.relation)
        if stored is None:
            raise ValidationError(
                f"unknown relation {atom.relation!r} in atom "
                f"{atom.unparse()}"
            )
        if len(atom.args) != stored.arity:
            raise ValidationError(
                f"arity mismatch in atom {atom.unparse()}: relation "
                f"{atom.relation!r} has {stored.arity} attribute(s) "
                f"({', '.join(stored.attributes)})"
            )


@dataclass
class LoweredQuery:
    """A statement bound to stored relations, ready for planning."""

    statement: QueryStatement
    query: Query
    #: atom alias (Query atom name) -> source relation name
    alias_of: Dict[str, str]

    @property
    def output_variables(self) -> Tuple[str, ...]:
        """The variables the result is reported over.

        Head variables for projection queries; for aggregate heads,
        every body variable (the aggregate is computed over the full
        join by the executor).
        """
        if self.statement.aggregate is not None:
            return tuple(self.statement.variables())
        return self.statement.head_vars


def lower(statement: QueryStatement, source) -> LoweredQuery:
    """Bind each atom to its stored relation and build the core Query."""
    validate(statement, source)
    used_aliases: set = set()
    relations: List[Relation] = []
    alias_of: Dict[str, str] = {}
    occurrences: Dict[str, int] = {}
    for atom in statement.body:
        stored = _resolve(source, atom.relation)
        occurrences[atom.relation] = occurrences.get(atom.relation, 0) + 1
        alias = atom.relation
        k = occurrences[atom.relation]
        if k > 1:
            alias = f"{atom.relation}__{k}"
        while alias in used_aliases:
            k += 1
            alias = f"{atom.relation}__{k}"
        used_aliases.add(alias)
        alias_of[alias] = atom.relation
        relations.append(
            Relation.from_index(
                alias,
                atom.args,
                stored.index,
                backend=stored.backend,
            )
        )
    return LoweredQuery(
        statement=statement, query=Query(relations), alias_of=alias_of
    )
