"""Update-log text format: the replay input of ``repro stream``.

One update per line, batches separated by ``commit``::

    # comments and blank lines are ignored
    +R 1,2          # insert (1,2) into relation R
    -S 2,3          # delete (2,3) from relation S
    commit          # batch boundary
    +R 4,5

A trailing batch without ``commit`` is applied by default; pass
``require_commit=True`` (what WAL replay and ``repro stream --strict``
do) to discard it with an :class:`UncommittedTailWarning` instead —
an uncommitted tail is exactly what a producer crash leaves behind.
Values must be integers (apply the same dictionary encoding as
``repro.io`` upstream if your data is textual).
"""

from __future__ import annotations

import os
import tempfile
import warnings
from typing import IO, Iterable, Iterator, List, Union

from repro.dynamic.catalog import DELETE, INSERT, Update

COMMIT = "commit"


class UncommittedTailWarning(UserWarning):
    """A log ended with updates after its last ``commit`` line."""


def parse_update(line: str, lineno: int = 0) -> Update:
    """Parse one ``+NAME v1,v2,...`` / ``-NAME v1,v2,...`` line."""
    where = f"line {lineno}: " if lineno else ""
    if not line:
        raise ValueError(f"{where}empty update line")
    op, body = line[0], line[1:].strip()
    if op not in (INSERT, DELETE):
        raise ValueError(
            f"{where}expected '+' or '-' at start of update {line!r}"
        )
    parts = body.split(None, 1)
    if len(parts) != 2:
        raise ValueError(
            f"{where}expected '{op}NAME v1,v2,...', got {line!r}"
        )
    name, values_text = parts
    try:
        row = tuple(int(v) for v in values_text.split(","))
    except ValueError:
        raise ValueError(
            f"{where}non-integer value in update {line!r}"
        ) from None
    return Update(name, op, row)


def iter_batches(
    lines: Iterable[str], require_commit: bool = False
) -> Iterator[List[Update]]:
    """Yield update batches from log lines (see module docstring).

    With ``require_commit``, a trailing batch that never saw its
    ``commit`` line is dropped (with :class:`UncommittedTailWarning`)
    rather than applied — use this when the log's producer may have
    crashed mid-batch.
    """
    batch: List[Update] = []
    for lineno, raw in enumerate(lines, 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line == COMMIT:
            if batch:
                yield batch
                batch = []
            continue
        batch.append(parse_update(line, lineno))
    if batch:
        if require_commit:
            warnings.warn(
                f"discarding uncommitted tail of {len(batch)} "
                "update(s) (no trailing 'commit')",
                UncommittedTailWarning,
                stacklevel=2,
            )
        else:
            yield batch


def read_log(
    source: Union[str, IO[str]], require_commit: bool = False
) -> List[List[Update]]:
    """Read a whole update log (path or open file) into batches."""
    if isinstance(source, str):
        with open(source) as handle:
            return list(iter_batches(handle, require_commit=require_commit))
    return list(iter_batches(source, require_commit=require_commit))


def format_update(update: Update) -> str:
    return f"{update.op}{update.relation} " + ",".join(
        map(str, update.row)
    )


def write_log(path: str, batches: Iterable[Iterable[Update]]) -> None:
    """Write batches in the replayable text format (commit-terminated).

    The log appears atomically: batches go to a temp file in the target
    directory which is fsynced and renamed over ``path``, so readers
    never observe a half-written log and a crash leaves the previous
    contents intact.
    """
    directory = os.path.dirname(os.path.abspath(path))
    # mkstemp creates the temp file 0600 and os.replace keeps that mode;
    # match what plain open() would have produced — an existing target's
    # mode, else 0666 under the current umask.
    try:
        mode = os.stat(path).st_mode & 0o7777
    except OSError:
        umask = os.umask(0)
        os.umask(umask)
        mode = 0o666 & ~umask
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        os.chmod(tmp_path, mode)
        with os.fdopen(fd, "w") as handle:
            for batch in batches:
                for update in batch:
                    handle.write(format_update(update) + "\n")
                handle.write(COMMIT + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.remove(tmp_path)
        except OSError:
            pass
        raise
