"""Update-log text format: the replay input of ``repro stream``.

One update per line, batches separated by ``commit``::

    # comments and blank lines are ignored
    +R 1,2          # insert (1,2) into relation R
    -S 2,3          # delete (2,3) from relation S
    commit          # batch boundary
    +R 4,5

A trailing batch without ``commit`` is still applied.  Values must be
integers (apply the same dictionary encoding as ``repro.io`` upstream if
your data is textual).
"""

from __future__ import annotations

from typing import IO, Iterable, Iterator, List, Union

from repro.dynamic.catalog import DELETE, INSERT, Update

COMMIT = "commit"


def parse_update(line: str, lineno: int = 0) -> Update:
    """Parse one ``+NAME v1,v2,...`` / ``-NAME v1,v2,...`` line."""
    where = f"line {lineno}: " if lineno else ""
    if not line:
        raise ValueError(f"{where}empty update line")
    op, body = line[0], line[1:].strip()
    if op not in (INSERT, DELETE):
        raise ValueError(
            f"{where}expected '+' or '-' at start of update {line!r}"
        )
    parts = body.split(None, 1)
    if len(parts) != 2:
        raise ValueError(
            f"{where}expected '{op}NAME v1,v2,...', got {line!r}"
        )
    name, values_text = parts
    try:
        row = tuple(int(v) for v in values_text.split(","))
    except ValueError:
        raise ValueError(
            f"{where}non-integer value in update {line!r}"
        ) from None
    return Update(name, op, row)


def iter_batches(lines: Iterable[str]) -> Iterator[List[Update]]:
    """Yield update batches from log lines (see module docstring)."""
    batch: List[Update] = []
    for lineno, raw in enumerate(lines, 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line == COMMIT:
            if batch:
                yield batch
                batch = []
            continue
        batch.append(parse_update(line, lineno))
    if batch:
        yield batch


def read_log(source: Union[str, IO[str]]) -> List[List[Update]]:
    """Read a whole update log (path or open file) into batches."""
    if isinstance(source, str):
        with open(source) as handle:
            return list(iter_batches(handle))
    return list(iter_batches(source))


def format_update(update: Update) -> str:
    return f"{update.op}{update.relation} " + ",".join(
        map(str, update.row)
    )


def write_log(path: str, batches: Iterable[Iterable[Update]]) -> None:
    """Write batches in the replayable text format (commit-terminated)."""
    with open(path, "w") as handle:
        for batch in batches:
            for update in batch:
                handle.write(format_update(update) + "\n")
            handle.write(COMMIT + "\n")
