"""Write-ahead log: the update-log text format, made crash-safe.

Record bodies reuse the exact line syntax of :mod:`repro.dynamic.log`
(``+R 1,2`` / ``-S 3,4``), extended with one-line control records for
the other durable catalog operations::

    !create {"name": "R", "attributes": ["A", "B"], ...}
    !view {"name": "V", "relations": ["R", "S"], ...}
    !flush R        (or ``!flush *`` for all relations)
    !compact R

What makes it a WAL rather than a plain log is the **framed commit
record** terminating every entry::

    +R 1,2
    +S 2,3
    commit <lsn> <n_body_lines> <crc32-of-body>

Replay applies a record only when its commit line is present, its line
count matches, and the CRC over the body text verifies.  A truncated or
corrupt *tail* — a crash mid-append — is therefore detected and
discarded (torn-tail tolerance), while corruption *before* valid
records raises :class:`CorruptWalError`: silence about mid-log damage
is never an option.  LSNs are assigned at append time and must be
strictly sequential across segment files, so a missing segment is also
detected rather than silently skipped.

Segments (``wal-00000001.log`` ...) rotate after ``segment_limit``
records; :meth:`WriteAheadLog.truncate_through` drops whole segments
made redundant by a snapshot.  Durability is governed by the fsync
policy:

* ``always`` — flush + fsync after every commit (safe against power
  loss, slowest);
* ``batch`` — flush after every commit, fsync only on rotation /
  explicit :meth:`WriteAheadLog.sync` / close (safe against process
  crash, a power loss may lose the OS-buffered suffix);
* ``off`` — flush only (benchmark baseline; no fsync ever).

All file I/O goes through a :class:`repro.testing.faults.FileSystem`
so the fault suite can inject torn writes, and every state transition
declares a :func:`repro.testing.faults.crashpoint`.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from typing import Any, Dict, Iterator, List, NamedTuple, Optional, Sequence, Tuple

from repro.dynamic.catalog import Update
from repro.dynamic.log import COMMIT, format_update, parse_update
from repro.testing.faults import REAL_FS, FileSystem, crashpoint

FSYNC_POLICIES = ("always", "batch", "off")

#: Record kinds: an update batch, or one of the control operations.
KIND_BATCH = "batch"
KIND_CREATE = "create"
KIND_VIEW = "view"
KIND_FLUSH = "flush"
KIND_COMPACT = "compact"

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"
_HEADER_PREFIX = "# repro-wal v1 "


class CorruptWalError(ValueError):
    """Mid-log damage: corruption anywhere except a discardable tail."""


class WalRecord(NamedTuple):
    """One committed WAL entry."""

    lsn: int
    kind: str
    #: The batch's updates (empty for control records).
    updates: Tuple[Update, ...]
    #: Control payload (``{}`` for batches): the ``!create`` / ``!view``
    #: JSON object, or ``{"name": ...}`` for flush / compact.
    payload: dict


def _segment_name(index: int) -> str:
    return f"{_SEGMENT_PREFIX}{index:08d}{_SEGMENT_SUFFIX}"


def _segment_index(filename: str) -> Optional[int]:
    if not (
        filename.startswith(_SEGMENT_PREFIX)
        and filename.endswith(_SEGMENT_SUFFIX)
    ):
        return None
    middle = filename[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
    return int(middle) if middle.isdigit() else None


def _parse_header(line: str, path: str) -> Tuple[int, int]:
    """``(segment_index, start_lsn)`` from a segment header line."""
    fields = dict(
        part.split("=", 1)
        for part in line[len(_HEADER_PREFIX):].split()
        if "=" in part
    )
    try:
        return int(fields["segment"]), int(fields["start_lsn"])
    except (KeyError, ValueError):
        raise CorruptWalError(
            f"{path}: malformed segment header {line!r}"
        ) from None


def _body_crc(body_lines: Sequence[str]) -> int:
    return zlib.crc32(("\n".join(body_lines) + "\n").encode("utf-8"))


def _parse_record(
    lsn: int, body_lines: List[str], path: str, first_line_no: int
) -> WalRecord:
    """Interpret a frame-validated body as a batch or control record."""
    first = body_lines[0]
    if first.startswith("!"):
        if len(body_lines) != 1:
            raise CorruptWalError(
                f"{path}: line {first_line_no}: control record "
                f"{first.split()[0]!r} must be a single line"
            )
        parts = first[1:].split(None, 1)
        kind = parts[0]
        rest = parts[1].strip() if len(parts) > 1 else ""
        if kind in (KIND_FLUSH, KIND_COMPACT):
            if rest in ("", "*"):
                payload = {"name": None}
            else:
                payload = {"name": rest}
            return WalRecord(lsn, kind, (), payload)
        if kind in (KIND_CREATE, KIND_VIEW):
            try:
                payload = json.loads(rest)
            except json.JSONDecodeError as exc:
                raise CorruptWalError(
                    f"{path}: line {first_line_no}: bad {kind} payload: "
                    f"{exc}"
                ) from None
            return WalRecord(lsn, kind, (), payload)
        raise CorruptWalError(
            f"{path}: line {first_line_no}: unknown control record "
            f"!{kind}"
        )
    updates = []
    for offset, line in enumerate(body_lines):
        try:
            updates.append(parse_update(line))
        except ValueError as exc:
            raise CorruptWalError(
                f"{path}: line {first_line_no + offset}: {exc}"
            ) from None
    return WalRecord(lsn, KIND_BATCH, tuple(updates), {})


class _SegmentScan(NamedTuple):
    header: Optional[Tuple[int, int]]  # (segment_index, start_lsn)
    records: List[WalRecord]
    #: Byte offset just past the last valid commit record — or past the
    #: header line when no record committed yet (truncation target when
    #: the tail is torn; repairing must never cut a valid header).
    valid_end: int
    #: Human-readable description of a discarded torn tail, if any.
    torn: Optional[str]


def _scan_segment(path: str, fs: FileSystem) -> _SegmentScan:
    """Parse one segment, stopping cleanly at a torn tail.

    Corruption that is *followed by* more data in the same file is not
    a tail and raises :class:`CorruptWalError`; the caller additionally
    rejects a torn tail in any segment but the last.
    """
    with fs.open(path, "rb") as handle:
        data = handle.read()
    header: Optional[Tuple[int, int]] = None
    records: List[WalRecord] = []
    valid_end = 0
    offset = 0
    body: List[str] = []
    body_start_line = 0
    line_no = 0

    def torn(reason: str) -> _SegmentScan:
        return _SegmentScan(header, records, valid_end, reason)

    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline < 0:
            # Trailing bytes without a newline: a write died mid-line.
            return torn(
                f"partial final line at byte {offset}"
            )
        raw = data[offset:newline]
        offset = newline + 1
        line_no += 1
        try:
            text = raw.decode("utf-8")
        except UnicodeDecodeError:
            if not _more_content(data, offset):
                return torn(f"undecodable bytes on line {line_no}")
            raise CorruptWalError(
                f"{path}: line {line_no}: undecodable bytes mid-log"
            )
        line = text.strip()
        if not line or (line.startswith("#") and not body):
            if line.startswith(_HEADER_PREFIX) and header is None:
                header = _parse_header(line, path)
                valid_end = offset
            continue
        if line.split(None, 1)[0] == COMMIT:
            parts = line.split()
            tail_ok = not _more_content(data, offset)
            if len(parts) != 4:
                if tail_ok:
                    return torn(f"malformed commit line {line_no}")
                raise CorruptWalError(
                    f"{path}: line {line_no}: malformed commit record "
                    f"{line!r}"
                )
            try:
                lsn, n_lines, crc = (
                    int(parts[1]), int(parts[2]), int(parts[3], 16)
                )
            except ValueError:
                if tail_ok:
                    return torn(f"malformed commit line {line_no}")
                raise CorruptWalError(
                    f"{path}: line {line_no}: malformed commit record "
                    f"{line!r}"
                ) from None
            if not body or len(body) != n_lines or _body_crc(body) != crc:
                if (
                    len(body) > n_lines
                    and _body_crc(body[-n_lines:]) == crc
                ):
                    # A *suffix* of the body frames validly: the extra
                    # leading lines are garbage injected before a real
                    # record.  A crash tears only suffixes, so this is
                    # corruption even at EOF — discarding it would
                    # silently drop the committed record it shadows.
                    raise CorruptWalError(
                        f"{path}: line {line_no}: "
                        f"{len(body) - n_lines} garbage line(s) "
                        "precede an otherwise-valid record"
                    )
                if tail_ok:
                    return torn(
                        f"commit at line {line_no} fails framing "
                        f"({len(body)} body lines, crc mismatch or "
                        "empty body)"
                    )
                raise CorruptWalError(
                    f"{path}: line {line_no}: commit record fails "
                    f"framing check (expected {n_lines} body lines / "
                    f"crc {crc:08x})"
                )
            records.append(
                _parse_record(lsn, body, path, body_start_line)
            )
            body = []
            valid_end = offset
            continue
        if not body:
            body_start_line = line_no
        body.append(line)
    if body:
        return torn(
            f"{len(body)} body line(s) with no commit record at EOF"
        )
    return _SegmentScan(header, records, valid_end, None)


def _more_content(data: bytes, offset: int) -> bool:
    """True if any non-whitespace byte exists at or after ``offset``."""
    return bool(data[offset:].strip())


class WriteAheadLog:
    """Append-only, segment-rotated, checksum-framed update log.

    Opening an existing directory scans every segment, validates LSN
    continuity, repairs (truncates) a torn tail in the final segment,
    and positions appends after the last committed record.  The scan's
    findings are kept on the instance: :attr:`records` (everything
    committed so far) and :attr:`repairs` (torn tails discarded).
    """

    def __init__(
        self,
        directory: str,
        fsync: str = "batch",
        segment_limit: Optional[int] = None,
        fs: Optional[FileSystem] = None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {fsync!r}; pick from "
                f"{FSYNC_POLICIES}"
            )
        if segment_limit is not None and segment_limit < 1:
            raise ValueError("segment_limit must be >= 1")
        self.directory = directory
        self.fsync_policy = fsync
        self.segment_limit = segment_limit
        self.fs = fs if fs is not None else REAL_FS
        self.repairs: List[str] = []
        self._records: List[WalRecord] = []
        self._handle = None
        self._segment_index = 0
        self._segment_records = 0
        self._last_lsn = 0
        self._appended = 0
        self._synced = 0
        # Observability sink: bind_obs swaps in real histograms; until
        # then appends and fsyncs pay a single ``is None`` check.
        self._append_hist: Optional[Any] = None
        self._fsync_hist: Optional[Any] = None
        self.fs.makedirs(directory)
        self._open_for_append()

    def bind_obs(self, obs: Any) -> None:
        """Route append/fsync wall times into an observability sink.

        ``obs`` is a :class:`repro.obs.Observability` (or the null
        implementation).  Disabled sinks leave the log exactly as
        constructed — the hot paths keep their no-instrument shape.
        """
        if not getattr(obs, "enabled", False):
            self._append_hist = None
            self._fsync_hist = None
            return
        self._append_hist = obs.metrics.histogram(
            "wal_append_seconds",
            "WAL record append wall time (body + commit frame + "
            "policy fsync).",
        )
        self._fsync_hist = obs.metrics.histogram(
            "wal_fsync_seconds",
            "Individual WAL fsync wall time.",
        )

    # ------------------------------------------------------------------
    # Opening / scanning
    # ------------------------------------------------------------------

    def _segment_paths(self) -> List[Tuple[int, str]]:
        entries = []
        for name in os.listdir(self.directory):
            index = _segment_index(name)
            if index is not None:
                entries.append(
                    (index, os.path.join(self.directory, name))
                )
        return sorted(entries)

    def _open_for_append(self) -> None:
        segments = self._segment_paths()
        expected_lsn: Optional[int] = None
        last_scan: Optional[_SegmentScan] = None
        for position, (index, path) in enumerate(segments):
            scan = _scan_segment(path, self.fs)
            last_scan = scan
            last = position == len(segments) - 1
            if scan.torn is not None:
                if not last:
                    raise CorruptWalError(
                        f"{path}: torn tail in a non-final segment "
                        f"({scan.torn}); later segments exist, so this "
                        "is mid-log corruption"
                    )
                self.fs.truncate(path, scan.valid_end)
                self.repairs.append(
                    f"{os.path.basename(path)}: discarded torn tail "
                    f"({scan.torn})"
                )
            if scan.header is not None:
                header_index, start_lsn = scan.header
                if header_index != index:
                    raise CorruptWalError(
                        f"{path}: header claims segment {header_index}"
                    )
                if expected_lsn is not None and start_lsn != expected_lsn:
                    raise CorruptWalError(
                        f"{path}: header start_lsn {start_lsn} != "
                        f"expected {expected_lsn} (missing segment?)"
                    )
                if expected_lsn is None:
                    expected_lsn = start_lsn
                # Seed LSN allocation from the header even when the
                # segment holds no records yet (e.g. a fresh segment
                # right after rotation + snapshot truncation): the next
                # append must continue the sequence the header claims,
                # not restart from 0.
                self._last_lsn = max(self._last_lsn, start_lsn - 1)
            for record in scan.records:
                if expected_lsn is not None and record.lsn != expected_lsn:
                    raise CorruptWalError(
                        f"{path}: record lsn {record.lsn} != expected "
                        f"{expected_lsn} (missing or reordered records)"
                    )
                expected_lsn = record.lsn + 1
                self._records.append(record)
                self._last_lsn = record.lsn
        if segments:
            self._segment_index = segments[-1][0]
            self._segment_records = len(last_scan.records)
            self._handle = self.fs.open(
                segments[-1][1], "a", encoding="utf-8", newline="\n"
            )
        else:
            self._start_segment(1)

    def _segment_path(self, index: int) -> str:
        return os.path.join(self.directory, _segment_name(index))

    def _start_segment(self, index: int) -> None:
        self._segment_index = index
        self._segment_records = 0
        path = self._segment_path(index)
        self._handle = self.fs.open(
            path, "a", encoding="utf-8", newline="\n"
        )
        self._handle.write(
            f"{_HEADER_PREFIX}segment={index} "
            f"start_lsn={self._last_lsn + 1}\n"
        )
        self._handle.flush()
        if self.fsync_policy != "off":
            # The new segment's directory entry must survive a power
            # loss, or recovery sees a hole in the segment chain.
            self._fsync(self._handle)
            self.fs.fsync_dir(self.directory)

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    @property
    def last_lsn(self) -> int:
        return self._last_lsn

    @property
    def records(self) -> List[WalRecord]:
        """Every committed record currently on disk (scan + appends)."""
        return list(self._records)

    def append_batch(self, updates: Sequence[Update]) -> int:
        """Durably commit one update batch; returns its LSN."""
        updates = tuple(updates)
        if not updates:
            raise ValueError("refusing to log an empty batch")
        lines = [format_update(u) for u in updates]
        lsn = self._append(lines)
        self._records.append(WalRecord(lsn, KIND_BATCH, updates, {}))
        return lsn

    def append_control(self, kind: str, payload: Dict[str, object]) -> int:
        """Durably commit a control record (create/view/flush/compact)."""
        if kind in (KIND_FLUSH, KIND_COMPACT):
            name = payload.get("name")
            line = f"!{kind} {name if name is not None else '*'}"
        elif kind in (KIND_CREATE, KIND_VIEW):
            line = f"!{kind} " + json.dumps(
                payload, sort_keys=True, separators=(",", ":")
            )
        else:
            raise ValueError(f"unknown control record kind {kind!r}")
        lsn = self._append([line])
        self._records.append(WalRecord(lsn, kind, (), dict(payload)))
        return lsn

    def _fsync(self, handle: Any) -> None:
        """One timed fsync; every fsync in the log funnels through here."""
        if self._fsync_hist is None:
            self.fs.fsync(handle)
        else:
            t0 = time.perf_counter()  # lint: disable=determinism -- reporting-only timing; never feeds results
            self.fs.fsync(handle)
            self._fsync_hist.observe(time.perf_counter() - t0)  # lint: disable=determinism -- reporting-only timing; never feeds results
        self._synced += 1

    def _append(self, lines: List[str]) -> int:
        if self._append_hist is None:
            return self._append_now(lines)
        t0 = time.perf_counter()  # lint: disable=determinism -- reporting-only timing; never feeds results
        lsn = self._append_now(lines)
        self._append_hist.observe(time.perf_counter() - t0)  # lint: disable=determinism -- reporting-only timing; never feeds results
        return lsn

    def _append_now(self, lines: List[str]) -> int:
        if self._handle is None:
            raise ValueError("write-ahead log is closed")
        crashpoint("wal.append.begin")
        lsn = self._last_lsn + 1
        handle = self._handle
        handle.write("\n".join(lines) + "\n")
        # Flush so an injected crash at the next point leaves the torn
        # body visible on disk, exactly like a real mid-append death.
        handle.flush()
        crashpoint("wal.append.body")
        handle.write(
            f"{COMMIT} {lsn} {len(lines)} {_body_crc(lines):08x}\n"
        )
        handle.flush()
        crashpoint("wal.append.commit")
        if self.fsync_policy == "always":
            self._fsync(handle)
            crashpoint("wal.fsync")
        self._last_lsn = lsn
        self._appended += 1
        self._segment_records += 1
        if (
            self.segment_limit is not None
            and self._segment_records >= self.segment_limit
        ):
            self.rotate()
        return lsn

    def sync(self) -> None:
        """Force an fsync of the active segment (no-op when ``off``)."""
        if self._handle is not None and self.fsync_policy != "off":
            self._fsync(self._handle)

    def rotate(self) -> int:
        """Seal the active segment and start the next one."""
        if self._handle is not None:
            self._handle.flush()
            if self.fsync_policy != "off":
                self._fsync(self._handle)
            self._handle.close()
            self._handle = None
        crashpoint("wal.rotate")
        self._start_segment(self._segment_index + 1)
        return self._segment_index

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            if self.fsync_policy != "off":
                self._fsync(self._handle)
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Replay / maintenance
    # ------------------------------------------------------------------

    def replay(self, after_lsn: int = 0) -> Iterator[WalRecord]:
        """Committed records with ``lsn > after_lsn``, in order."""
        for record in self._records:
            if record.lsn > after_lsn:
                yield record

    def truncate_through(self, lsn: int) -> List[str]:
        """Remove whole segments whose records are all ``<= lsn``.

        The active segment is never removed.  Returns the deleted
        segment file names.  Safe to crash at any point: replay skips
        records at or below a snapshot's LSN whether or not their
        segment was deleted.
        """
        removed: List[str] = []
        for index, path in self._segment_paths():
            if index == self._segment_index:
                continue
            scan = _scan_segment(path, self.fs)
            if scan.records and scan.records[-1].lsn > lsn:
                continue
            if not scan.records and scan.header is not None:
                # Empty segment: removable once its start LSN is covered.
                if scan.header[1] > lsn:
                    continue
            crashpoint("wal.truncate")
            self.fs.remove(path)
            removed.append(os.path.basename(path))
        if removed and self.fsync_policy != "off":
            self.fs.fsync_dir(self.directory)
        return removed

    def stats(self) -> Dict[str, object]:
        return {
            "fsync_policy": self.fsync_policy,
            "last_lsn": self._last_lsn,
            "segments": len(self._segment_paths()),
            "active_segment": self._segment_index,
            "appended": self._appended,
            "fsyncs": self._synced,
            "repairs": list(self.repairs),
        }

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog({self.directory!r}, fsync="
            f"{self.fsync_policy!r}, lsn={self._last_lsn}, "
            f"segment={self._segment_index})"
        )
