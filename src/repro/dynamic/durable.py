"""Durable catalogs: open, crash-recover, and verify a data directory.

A data directory is the unit of durability::

    <data_dir>/
        wal/wal-00000001.log ...     (repro.dynamic.wal)
        snapshots/snap-00000001/ ... (repro.dynamic.snapshot)

:func:`open_catalog` is the single entry point serving code uses: it
recovers whatever state the directory holds (newest valid snapshot +
replay of the WAL records past its recorded LSN — including ``!create``
/ ``!view`` DDL, so a WAL-only directory with no snapshot at all
rebuilds from scratch), verifies the snapshot against its Merkle
roots, then re-attaches the WAL so subsequent mutations keep being
logged.  An empty directory is simply a fresh durable catalog.

Recovery replays records through the catalog's ordinary mutation
methods with logging suppressed, so view maintenance, memtable
auto-flush, and report bookkeeping behave exactly as they did before
the crash — which is what makes the fault suite's "pre-batch or
post-batch, never between" assertion provable.

:func:`verify_state` is the audit path (CLI ``repro verify-state``):
it re-derives every hash the manifest claims — the manifest checksum,
each data file's SHA-256, the per-relation Merkle roots, the catalog
root — and reports mismatches instead of trusting the stored values.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dynamic import merkle
from repro.dynamic import snapshot as snapshot_mod
from repro.dynamic.catalog import Catalog
from repro.dynamic.snapshot import SnapshotError
from repro.dynamic.wal import (
    KIND_BATCH,
    KIND_COMPACT,
    KIND_CREATE,
    KIND_FLUSH,
    KIND_VIEW,
    CorruptWalError,
    WriteAheadLog,
)
from repro.storage.delta import DeltaRelation
from repro.testing.faults import FileSystem
from repro.util.counters import OpCounters

WAL_DIR = "wal"


@dataclass
class RecoveryReport:
    """What a recovery did, for logs / the ``repro recover`` CLI."""

    data_dir: str
    snapshot_path: Optional[str] = None
    snapshot_id: Optional[int] = None
    snapshot_lsn: int = 0
    last_lsn: int = 0
    records_replayed: int = 0
    batches_replayed: int = 0
    #: relation name -> live row count after recovery
    relations: Dict[str, int] = field(default_factory=dict)
    #: view name -> row count after recovery
    views: Dict[str, int] = field(default_factory=dict)
    #: True when the snapshot's Merkle roots were recomputed and matched.
    verified: bool = False
    wal_repairs: List[str] = field(default_factory=list)
    catalog_root: str = ""
    seconds: float = 0.0

    def summary(self) -> str:
        source = (
            f"snapshot {self.snapshot_id} (lsn {self.snapshot_lsn})"
            if self.snapshot_id is not None
            else "no snapshot"
        )
        return (
            f"recovered from {source} + {self.records_replayed} WAL "
            f"record(s) to lsn {self.last_lsn}: "
            f"{len(self.relations)} relation(s), "
            f"{len(self.views)} view(s)"
            + (", verified" if self.verified else "")
        )


def _restore_from_snapshot(
    catalog: Catalog,
    manifest: dict,
    states: Dict[str, snapshot_mod.RelationState],
    verify: bool,
    report: RecoveryReport,
) -> None:
    roots: Dict[str, bytes] = {}
    for name, state in states.items():
        delta = DeltaRelation.restore(
            arity=len(state.attributes),
            runs=state.runs,
            memtable=state.memtable,
            counters=OpCounters(),
            memtable_limit=(
                state.memtable_limit
                if state.memtable_limit is not None
                else manifest.get("memtable_limit")
            ),
        )
        catalog._adopt_relation(name, state.attributes, delta)
        if verify:
            roots[name] = merkle.relation_root(delta.tuples())
    if verify:
        for name, root in roots.items():
            claimed = manifest["relations"][name]["root"]
            if root.hex() != claimed:
                raise SnapshotError(
                    f"{report.snapshot_path}: relation {name!r} "
                    f"restores to Merkle root {root.hex()[:16]}..., "
                    f"manifest claims {claimed[:16]}..."
                )
        catalog_root = merkle.catalog_root(roots).hex()
        if catalog_root != manifest["catalog_root"]:
            raise SnapshotError(
                f"{report.snapshot_path}: catalog root mismatch"
            )
        report.verified = True
    catalog.generation = manifest["generation"]
    catalog.batches_applied = manifest["batches_applied"]
    catalog.memtable_limit = manifest.get("memtable_limit")
    for view_name, spec in manifest["views"].items():
        catalog.register_view(
            view_name,
            spec["relations"],
            gao=spec["gao"],
            strategy=spec["strategy"],
            shards=spec["shards"],
            workers=spec["workers"],
            cds_backend=spec["cds_backend"],
        )


def _replay_record(catalog: Catalog, record) -> None:
    if record.kind == KIND_BATCH:
        catalog.apply_batch(record.updates)
    elif record.kind == KIND_CREATE:
        payload = record.payload
        catalog.create_relation(
            payload["name"],
            payload["attributes"],
            [tuple(row) for row in payload.get("rows", ())],
            memtable_limit=payload.get("memtable_limit"),
        )
    elif record.kind == KIND_VIEW:
        payload = record.payload
        catalog.register_view(
            payload["name"],
            payload["relations"],
            gao=payload["gao"],
            strategy=payload["strategy"],
            shards=payload["shards"],
            workers=payload["workers"],
            cds_backend=payload["cds_backend"],
        )
    elif record.kind == KIND_FLUSH:
        catalog.flush(record.payload.get("name"))
    elif record.kind == KIND_COMPACT:
        catalog.compact(record.payload.get("name"))
    else:
        raise CorruptWalError(
            f"replay: unknown record kind {record.kind!r} at lsn "
            f"{record.lsn}"
        )


def recover_catalog(
    data_dir: str,
    fsync: str = "batch",
    segment_limit: Optional[int] = None,
    memtable_limit: Optional[int] = None,
    verify: bool = True,
    attach: bool = True,
    fs: Optional[FileSystem] = None,
) -> Tuple[Catalog, RecoveryReport]:
    """Newest valid snapshot + WAL suffix replay -> a live catalog.

    ``verify`` recomputes the snapshot's Merkle roots before trusting
    it.  With ``attach`` (the default) the WAL is re-attached so the
    catalog keeps journaling; pass ``attach=False`` for a read-only
    inspection (the WAL file handle is closed).  ``memtable_limit``
    applies only when the directory holds no snapshot (otherwise the
    manifest's value wins).
    """
    t0 = time.perf_counter()  # lint: disable=determinism -- reporting-only timing; never feeds results
    report = RecoveryReport(data_dir=data_dir)
    wal = WriteAheadLog(
        os.path.join(data_dir, WAL_DIR),
        fsync=fsync,
        segment_limit=segment_limit,
        fs=fs,
    )
    try:
        report.wal_repairs = list(wal.repairs)
        catalog = Catalog(memtable_limit=memtable_limit)
        newest = snapshot_mod.newest_valid_snapshot(data_dir, fs=fs)
        catalog._replaying = True
        try:
            if newest is not None:
                snap_id, snap_path, _ = newest
                report.snapshot_id = snap_id
                report.snapshot_path = snap_path
                manifest, states = snapshot_mod.load_snapshot(
                    snap_path, verify=verify, fs=fs
                )
                report.snapshot_lsn = manifest["wal_lsn"]
                _restore_from_snapshot(
                    catalog, manifest, states, verify, report
                )
            for record in wal.replay(after_lsn=report.snapshot_lsn):
                _replay_record(catalog, record)
                report.records_replayed += 1
                if record.kind == KIND_BATCH:
                    report.batches_replayed += 1
        finally:
            catalog._replaying = False
        report.last_lsn = wal.last_lsn
        report.relations = {
            name: len(catalog.relation(name).index)
            for name in catalog.relation_names()
        }
        report.views = {
            name: len(catalog.view(name))
            for name in catalog.view_names()
        }
        report.catalog_root = catalog.state_roots()["catalog_root"]
    except BaseException:
        wal.close()
        raise
    if attach:
        catalog.attach_wal(wal, data_dir)
    else:
        wal.close()
    report.seconds = time.perf_counter() - t0  # lint: disable=determinism -- reporting-only timing; never feeds results
    return catalog, report


def open_catalog(
    data_dir: str,
    fsync: str = "batch",
    segment_limit: Optional[int] = None,
    memtable_limit: Optional[int] = None,
    verify: bool = True,
    fs: Optional[FileSystem] = None,
) -> Tuple[Catalog, RecoveryReport]:
    """Open (creating if absent) a durable catalog at ``data_dir``."""
    return recover_catalog(
        data_dir,
        fsync=fsync,
        segment_limit=segment_limit,
        memtable_limit=memtable_limit,
        verify=verify,
        attach=True,
        fs=fs,
    )


# ----------------------------------------------------------------------
# State verification (repro verify-state)
# ----------------------------------------------------------------------


@dataclass
class StateReport:
    """Outcome of a full state audit of a data directory."""

    data_dir: str
    ok: bool = True
    snapshot_id: Optional[int] = None
    snapshot_path: Optional[str] = None
    problems: List[str] = field(default_factory=list)
    #: Current (post-WAL-replay) roots, hex; empty when recovery failed.
    relation_roots: Dict[str, str] = field(default_factory=dict)
    catalog_root: str = ""
    wal_last_lsn: int = 0
    records_replayed: int = 0

    def lines(self) -> List[str]:
        out = []
        if self.snapshot_id is not None:
            out.append(
                f"snapshot {self.snapshot_id}: "
                f"{os.path.basename(self.snapshot_path)}"
            )
        else:
            out.append("no snapshot (WAL-only state)")
        for problem in self.problems:
            out.append(f"FAIL {problem}")
        if self.ok:
            for name in sorted(self.relation_roots):
                out.append(
                    f"OK relation {name}: root "
                    f"{self.relation_roots[name][:16]}..."
                )
            out.append(
                f"OK catalog root {self.catalog_root[:16]}... "
                f"(wal lsn {self.wal_last_lsn}, "
                f"{self.records_replayed} record(s) replayed)"
            )
        return out


def verify_state(
    data_dir: str, fs: Optional[FileSystem] = None
) -> StateReport:
    """Audit a data directory: manifest, file hashes, Merkle roots, WAL.

    Unlike recovery — which silently skips an *incomplete* newest
    snapshot (legitimate crash debris) — verification is strict about
    the newest snapshot that claims to be complete: a checksum, file
    hash, or root mismatch there marks the state not-ok.
    """
    report = StateReport(data_dir=data_dir)
    snapshots = snapshot_mod.list_snapshots(data_dir)
    chosen: Optional[Tuple[int, str]] = None
    for snap_id, path in snapshots:
        if os.path.exists(os.path.join(path, snapshot_mod.MANIFEST)):
            chosen = (snap_id, path)
            break
        # No manifest at all: incomplete snapshot (crash debris), skip.
    if chosen is not None:
        report.snapshot_id, report.snapshot_path = chosen
        try:
            manifest, states = snapshot_mod.load_snapshot(
                chosen[1], verify=True, fs=fs
            )
            for name, state in states.items():
                delta = DeltaRelation.restore(
                    arity=len(state.attributes),
                    runs=state.runs,
                    memtable=state.memtable,
                )
                root = merkle.relation_root(delta.tuples()).hex()
                claimed = manifest["relations"][name]["root"]
                if root != claimed:
                    report.ok = False
                    report.problems.append(
                        f"relation {name!r}: files restore to root "
                        f"{root[:16]}..., manifest claims "
                        f"{claimed[:16]}..."
                    )
        except SnapshotError as exc:
            report.ok = False
            report.problems.append(str(exc))
    if not report.ok:
        return report
    try:
        catalog, recovery = recover_catalog(
            data_dir, verify=True, attach=False, fs=fs
        )
    except (SnapshotError, CorruptWalError) as exc:
        report.ok = False
        report.problems.append(str(exc))
        return report
    roots = catalog.state_roots()
    report.relation_roots = roots["relations"]
    report.catalog_root = roots["catalog_root"]
    report.wal_last_lsn = recovery.last_lsn
    report.records_replayed = recovery.records_replayed
    return report
