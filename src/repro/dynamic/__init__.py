"""Dynamic data subsystem: writable relations, live views, streaming.

Layers (ISSUE 2 / the ROADMAP's "data that changes while queries stay
fresh" direction):

* storage — :class:`repro.storage.delta.DeltaRelation`, an LSM-style
  writable index (memtable + immutable FlatTrie runs + tombstones)
  exposing the unchanged trie / node-handle API;
* maintenance — :class:`repro.core.incremental.LiveJoin`, a
  materialized join view kept fresh by Minesweeper-evaluated delta
  terms;
* serving — :class:`Catalog`, which registers named relations, applies
  :class:`Update` batches, and serves registered live queries (CLI:
  ``repro stream``).
"""

from repro.core.incremental import LiveJoin
from repro.dynamic.catalog import (
    DELETE,
    INSERT,
    BatchReport,
    Catalog,
    Update,
    net_updates,
)
from repro.dynamic.log import (
    format_update,
    iter_batches,
    parse_update,
    read_log,
    write_log,
)
from repro.dynamic.streams import (
    build_catalog,
    intersection_stream,
    replay_with_recompute,
    triangle_stream,
)
from repro.storage.delta import DeltaRelation, StaleHandleError

__all__ = [
    "BatchReport",
    "Catalog",
    "DELETE",
    "DeltaRelation",
    "INSERT",
    "LiveJoin",
    "StaleHandleError",
    "Update",
    "build_catalog",
    "format_update",
    "intersection_stream",
    "iter_batches",
    "net_updates",
    "parse_update",
    "read_log",
    "replay_with_recompute",
    "triangle_stream",
    "write_log",
]
