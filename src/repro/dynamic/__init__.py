"""Dynamic data subsystem: writable relations, live views, streaming.

Layers (ISSUE 2 / the ROADMAP's "data that changes while queries stay
fresh" direction):

* storage — :class:`repro.storage.delta.DeltaRelation`, an LSM-style
  writable index (memtable + immutable FlatTrie runs + tombstones)
  exposing the unchanged trie / node-handle API;
* maintenance — :class:`repro.core.incremental.LiveJoin`, a
  materialized join view kept fresh by Minesweeper-evaluated delta
  terms;
* serving — :class:`Catalog`, which registers named relations, applies
  :class:`Update` batches, and serves registered live queries (CLI:
  ``repro stream``);
* durability (ISSUE 6) — :class:`repro.dynamic.wal.WriteAheadLog`
  (log-before-mutate journaling), :mod:`repro.dynamic.snapshot`
  (atomic snapshot/restore of the LSM state), and
  :func:`open_catalog` / :func:`recover_catalog` /
  :func:`verify_state` (:mod:`repro.dynamic.durable`), with
  Merkle-hashed state roots (:mod:`repro.dynamic.merkle`) binding what
  was recovered to what was committed.
"""

from repro.core.incremental import LiveJoin
from repro.dynamic.catalog import (
    DELETE,
    INSERT,
    BatchReport,
    Catalog,
    Update,
    net_updates,
)
from repro.dynamic.durable import (
    RecoveryReport,
    StateReport,
    open_catalog,
    recover_catalog,
    verify_state,
)
from repro.dynamic.log import (
    UncommittedTailWarning,
    format_update,
    iter_batches,
    parse_update,
    read_log,
    write_log,
)
from repro.dynamic.snapshot import SnapshotError, SnapshotInfo, write_snapshot
from repro.dynamic.wal import CorruptWalError, WriteAheadLog
from repro.dynamic.streams import (
    build_catalog,
    intersection_stream,
    replay_with_recompute,
    triangle_stream,
)
from repro.storage.delta import DeltaRelation, StaleHandleError

__all__ = [
    "BatchReport",
    "Catalog",
    "CorruptWalError",
    "DELETE",
    "DeltaRelation",
    "INSERT",
    "LiveJoin",
    "RecoveryReport",
    "SnapshotError",
    "SnapshotInfo",
    "StaleHandleError",
    "StateReport",
    "UncommittedTailWarning",
    "Update",
    "WriteAheadLog",
    "build_catalog",
    "format_update",
    "intersection_stream",
    "iter_batches",
    "net_updates",
    "open_catalog",
    "parse_update",
    "read_log",
    "recover_catalog",
    "replay_with_recompute",
    "triangle_stream",
    "verify_state",
    "write_log",
    "write_snapshot",
]
