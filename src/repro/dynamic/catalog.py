"""The dynamic catalog: named writable relations + registered live views.

A :class:`Catalog` is the serving surface of the dynamic subsystem: it
owns a set of named :class:`~repro.storage.delta.DeltaRelation`-backed
relations, accepts update batches (:class:`Update` records), and keeps
every registered :class:`~repro.core.incremental.LiveJoin` view fresh —
orchestrating the delta rule's mixed old/new state across views that
share relations (each relation's delta is folded into *every* view
before the storage apply, one relation at a time, in batch order).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple

from repro.core.incremental import LiveJoin
from repro.storage.delta import DeltaRelation
from repro.storage.relation import Relation
from repro.util.counters import OpCounters

Row = Tuple[int, ...]

INSERT = "+"
DELETE = "-"


class Update(NamedTuple):
    """One streamed change: insert (``+``) or delete (``-``) of a row."""

    relation: str
    op: str  # INSERT or DELETE
    row: Row


def net_updates(
    updates: Iterable[Update],
) -> "Dict[str, Tuple[List[Row], List[Row]]]":
    """Net a batch to its final per-row effect (last write wins).

    Returns relation -> ``(inserts, deletes)`` with relations in
    first-appearance order, so replaying the result relation-by-relation
    is equivalent to replaying the raw update sequence.
    """
    per_relation: Dict[str, Dict[Row, str]] = {}
    for update in updates:
        if update.op not in (INSERT, DELETE):
            raise ValueError(f"unknown update op {update.op!r}")
        final = per_relation.setdefault(update.relation, {})
        final[tuple(update.row)] = update.op
    return {
        name: (
            [row for row, op in final.items() if op == INSERT],
            [row for row, op in final.items() if op == DELETE],
        )
        for name, final in per_relation.items()
    }


@dataclass
class BatchReport:
    """What one :meth:`Catalog.apply_batch` call did, and what it cost."""

    batch: int
    #: relation -> (effective inserts, effective deletes)
    applied: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: view -> {"rows_added", "rows_removed", "rows", "ops": snapshot}
    views: Dict[str, dict] = field(default_factory=dict)
    seconds: float = 0.0

    @property
    def updates_applied(self) -> int:
        return sum(i + d for i, d in self.applied.values())

    def view_ops(self, name: str, key: str) -> int:
        return self.views[name]["ops"].get(key, 0)


class Catalog:
    """Named writable relations plus the live views served over them."""

    def __init__(self, memtable_limit: Optional[int] = None) -> None:
        self._relations: Dict[str, Relation] = {}
        self._views: Dict[str, LiveJoin] = {}
        self.memtable_limit = memtable_limit
        self.batches_applied = 0
        #: Monotone counter bumped by every operation that can change
        #: what a planner saw — DDL (``create_relation``), data
        #: (``apply_batch``), and storage-layout maintenance
        #: (``flush`` / ``compact``).  Cached plans are keyed by query
        #: signature *plus* this generation, so any of those events
        #: invalidates them (see :mod:`repro.planner.cache`).
        self.generation = 0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def create_relation(
        self,
        name: str,
        attributes: Sequence[str],
        rows: Iterable[Sequence[int]] = (),
        memtable_limit: Optional[int] = None,
    ) -> Relation:
        """Register a writable relation (initial rows go to the first run).

        ``rows`` may be an iterable of tuples or an already-built
        :class:`~repro.storage.flat_trie.FlatTrieRelation`, which is
        adopted as the first run without a rebuild.
        """
        if name in self._relations:
            raise ValueError(f"relation {name!r} already registered")
        attrs = tuple(attributes)
        index = DeltaRelation(
            rows,
            arity=len(attrs),
            counters=OpCounters(),
            memtable_limit=(
                memtable_limit
                if memtable_limit is not None
                else self.memtable_limit
            ),
        )
        relation = Relation.from_index(name, attrs, index)
        self._relations[name] = relation
        self.generation += 1
        return relation

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise KeyError(f"no relation named {name!r}") from None

    def delta(self, name: str) -> DeltaRelation:
        """The writable index behind a registered relation."""
        return self.relation(name).index

    def relation_names(self) -> List[str]:
        return list(self._relations)

    def register_view(
        self,
        name: str,
        relation_names: Sequence[str],
        gao: Optional[Sequence[str]] = None,
        strategy: str = "auto",
        shards: int = 1,
        workers: int = 0,
        cds_backend: Optional[str] = None,
    ) -> LiveJoin:
        """Register (and immediately materialize) a live join view.

        ``shards`` / ``workers`` thread through to the view's
        evaluations: the seed, each maintenance delta term, and
        recomputes fan out across ranges of the first GAO attribute
        (see :class:`~repro.core.incremental.LiveJoin`).
        """
        if name in self._views:
            raise ValueError(f"view {name!r} already registered")
        missing = [n for n in relation_names if n not in self._relations]
        if missing:
            raise KeyError(f"unknown relations {missing} in view {name!r}")
        view = LiveJoin(
            name,
            [self._relations[n] for n in relation_names],
            gao=gao,
            strategy=strategy,
            cds_backend=cds_backend,
            shards=shards,
            workers=workers,
        )
        self._views[name] = view
        return view

    def view(self, name: str) -> LiveJoin:
        try:
            return self._views[name]
        except KeyError:
            raise KeyError(f"no view named {name!r}") from None

    def view_names(self) -> List[str]:
        return list(self._views)

    def query(self, name: str) -> List[Row]:
        """Serve a registered view's current rows."""
        return self.view(name).rows()

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def apply_batch(self, updates: Iterable[Update]) -> BatchReport:
        """Apply one update batch and maintain every registered view.

        Per relation (in the batch's first-appearance order): compute
        the effective delta against current storage, fold it into every
        view that references the relation (pre-update state — the delta
        rule's requirement), then apply it to storage.
        """
        t0 = time.perf_counter()
        grouped = net_updates(updates)
        unknown = [n for n in grouped if n not in self._relations]
        if unknown:
            raise KeyError(f"updates reference unknown relations {unknown}")
        # Validate the whole batch (arity, types) before mutating
        # anything, so a bad row can't leave views and storage
        # half-updated.  Each relation is touched once per batch and no
        # relation's update changes another's state, so the effective
        # deltas computed here against the pre-batch state are exactly
        # the per-relation effective deltas of the sequential replay.
        effective = {
            name: self._relations[name].index.effective_delta(
                inserts, deletes
            )
            for name, (inserts, deletes) in grouped.items()
        }
        self.batches_applied += 1
        self.generation += 1
        report = BatchReport(batch=self.batches_applied)
        view_counters = {name: OpCounters() for name in self._views}
        view_added = dict.fromkeys(self._views, 0)
        view_removed = dict.fromkeys(self._views, 0)
        view_seconds = dict.fromkeys(self._views, 0.0)
        for name, (eff_ins, eff_del) in effective.items():
            relation = self._relations[name]
            for view_name, view in self._views.items():
                v0 = time.perf_counter()
                added, removed = view.apply_delta(
                    name, eff_ins, eff_del, counters=view_counters[view_name]
                )
                view_seconds[view_name] += time.perf_counter() - v0
                view_added[view_name] += added
                view_removed[view_name] += removed
            relation.index.apply_effective(eff_ins, eff_del)
            report.applied[name] = (len(eff_ins), len(eff_del))
        for view_name, view in self._views.items():
            report.views[view_name] = {
                "rows_added": view_added[view_name],
                "rows_removed": view_removed[view_name],
                "rows": len(view),
                "ops": view_counters[view_name].snapshot(),
                "seconds": view_seconds[view_name],
            }
        report.seconds = time.perf_counter() - t0
        return report

    # ------------------------------------------------------------------
    # LSM maintenance + introspection
    # ------------------------------------------------------------------

    def flush(self, name: Optional[str] = None) -> None:
        """Seal memtables (one relation, or all)."""
        for rel in self._targets(name):
            rel.index.flush()
        self.generation += 1

    def compact(self, name: Optional[str] = None) -> None:
        """Merge run stacks (one relation, or all)."""
        for rel in self._targets(name):
            rel.index.compact()
        self.generation += 1

    def _targets(self, name: Optional[str]) -> List[Relation]:
        return (
            list(self._relations.values())
            if name is None
            else [self.relation(name)]
        )

    def stats(self) -> dict:
        return {
            "batches_applied": self.batches_applied,
            "relations": {
                name: rel.index.stats()
                for name, rel in self._relations.items()
            },
            "views": {
                name: {
                    "rows": len(view),
                    "maintenance_ops": view.counters.snapshot(),
                    "initial_ops": view.initial_ops,
                }
                for name, view in self._views.items()
            },
        }

    def __repr__(self) -> str:
        return (
            f"Catalog({len(self._relations)} relations, "
            f"{len(self._views)} views, "
            f"{self.batches_applied} batches applied)"
        )
