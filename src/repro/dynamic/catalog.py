"""The dynamic catalog: named writable relations + registered live views.

A :class:`Catalog` is the serving surface of the dynamic subsystem: it
owns a set of named :class:`~repro.storage.delta.DeltaRelation`-backed
relations, accepts update batches (:class:`Update` records), and keeps
every registered :class:`~repro.core.incremental.LiveJoin` view fresh —
orchestrating the delta rule's mixed old/new state across views that
share relations (each relation's delta is folded into *every* view
before the storage apply, one relation at a time, in batch order).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple

from repro.core.incremental import LiveJoin
from repro.storage.delta import DeltaRelation
from repro.storage.relation import Relation
from repro.util.counters import OpCounters

Row = Tuple[int, ...]

INSERT = "+"
DELETE = "-"


class Update(NamedTuple):
    """One streamed change: insert (``+``) or delete (``-``) of a row."""

    relation: str
    op: str  # INSERT or DELETE
    row: Row


def net_updates(
    updates: Iterable[Update],
) -> "Dict[str, Tuple[List[Row], List[Row]]]":
    """Net a batch to its final per-row effect (last write wins).

    Returns relation -> ``(inserts, deletes)`` with relations in
    first-appearance order, so replaying the result relation-by-relation
    is equivalent to replaying the raw update sequence.
    """
    per_relation: Dict[str, Dict[Row, str]] = {}
    for update in updates:
        if update.op not in (INSERT, DELETE):
            raise ValueError(f"unknown update op {update.op!r}")
        final = per_relation.setdefault(update.relation, {})
        final[tuple(update.row)] = update.op
    return {
        name: (
            [row for row, op in final.items() if op == INSERT],
            [row for row, op in final.items() if op == DELETE],
        )
        for name, final in per_relation.items()
    }


@dataclass
class BatchReport:
    """What one :meth:`Catalog.apply_batch` call did, and what it cost."""

    batch: int
    #: relation -> (effective inserts, effective deletes)
    applied: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: view -> {"rows_added", "rows_removed", "rows", "ops": snapshot}
    views: Dict[str, dict] = field(default_factory=dict)
    seconds: float = 0.0

    @property
    def updates_applied(self) -> int:
        return sum(i + d for i, d in self.applied.values())

    def view_ops(self, name: str, key: str) -> int:
        return self.views[name]["ops"].get(key, 0)


class Catalog:
    """Named writable relations plus the live views served over them."""

    def __init__(self, memtable_limit: Optional[int] = None) -> None:
        self._relations: Dict[str, Relation] = {}
        self._views: Dict[str, LiveJoin] = {}
        self.memtable_limit = memtable_limit
        self.batches_applied = 0
        #: Monotone counter bumped by every operation that can change
        #: what a planner saw — DDL (``create_relation``), data
        #: (``apply_batch``), and storage-layout maintenance
        #: (``flush`` / ``compact``).  Cached plans are keyed by query
        #: signature *plus* this generation, so any of those events
        #: invalidates them (see :mod:`repro.planner.cache`).
        self.generation = 0
        #: Durability (ISSUE 6): when a write-ahead log is attached,
        #: every mutation is committed to it *before* touching memory,
        #: so recovery replays to exactly the pre- or post-op state.
        self._wal = None
        self._data_dir: Optional[str] = None
        #: True while recovery replays WAL records through the normal
        #: mutation methods — suppresses re-logging them.
        self._replaying = False
        #: Observability bundle (ISSUE 7): spans around batch apply /
        #: flush / compact / snapshot, histograms for their durations.
        #: NULL_OBS by default — the counting-free disabled path.
        from repro.obs import NULL_OBS

        self.obs = NULL_OBS

    def bind_obs(self, obs) -> None:
        """Attach an observability bundle (and pass it to the WAL)."""
        self.obs = obs
        if self._wal is not None:
            self._wal.bind_obs(obs)

    # ------------------------------------------------------------------
    # Durability plumbing
    # ------------------------------------------------------------------

    @property
    def wal(self):
        """The attached :class:`~repro.dynamic.wal.WriteAheadLog`."""
        return self._wal

    @property
    def data_dir(self) -> Optional[str]:
        """Data directory this catalog persists to (durable catalogs)."""
        return self._data_dir

    def attach_wal(self, wal, data_dir: Optional[str] = None) -> None:
        """Make every subsequent mutation durable through ``wal``.

        Attaching does not replay anything — use :meth:`recover` (or
        :func:`repro.dynamic.durable.open_catalog`) to build a catalog
        *from* a data directory.
        """
        self._wal = wal
        if data_dir is not None:
            self._data_dir = data_dir
        if self.obs.enabled and wal is not None:
            wal.bind_obs(self.obs)

    def _log_control(self, kind: str, payload: dict) -> None:
        if self._wal is not None and not self._replaying:
            self._wal.append_control(kind, payload)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def create_relation(
        self,
        name: str,
        attributes: Sequence[str],
        rows: Iterable[Sequence[int]] = (),
        memtable_limit: Optional[int] = None,
    ) -> Relation:
        """Register a writable relation (initial rows go to the first run).

        ``rows`` may be an iterable of tuples or an already-built
        :class:`~repro.storage.flat_trie.FlatTrieRelation`, which is
        adopted as the first run without a rebuild.
        """
        if name in self._relations:
            raise ValueError(f"relation {name!r} already registered")
        attrs = tuple(attributes)
        index = DeltaRelation(
            rows,
            arity=len(attrs),
            counters=OpCounters(),
            memtable_limit=(
                memtable_limit
                if memtable_limit is not None
                else self.memtable_limit
            ),
        )
        # Building the index validated the schema and every initial
        # row, so nothing after the WAL append can fail: log, then
        # register (WAL-before-mutate).
        self._log_control(
            "create",
            {
                "name": name,
                "attributes": list(attrs),
                "memtable_limit": memtable_limit,
                "rows": [list(t) for t in index.tuples()],
            },
        )
        relation = Relation.from_index(name, attrs, index)
        self._relations[name] = relation
        self.generation += 1
        return relation

    def _adopt_relation(
        self, name: str, attributes: Sequence[str], index: DeltaRelation
    ) -> Relation:
        """Register an already-restored writable index (recovery path)."""
        if name in self._relations:
            raise ValueError(f"relation {name!r} already registered")
        if index.counters is None:
            index.counters = OpCounters()
        relation = Relation.from_index(name, tuple(attributes), index)
        self._relations[name] = relation
        self.generation += 1
        return relation

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise KeyError(f"no relation named {name!r}") from None

    def delta(self, name: str) -> DeltaRelation:
        """The writable index behind a registered relation."""
        return self.relation(name).index

    def relation_names(self) -> List[str]:
        return list(self._relations)

    def register_view(
        self,
        name: str,
        relation_names: Sequence[str],
        gao: Optional[Sequence[str]] = None,
        strategy: str = "auto",
        shards: int = 1,
        workers: int = 0,
        cds_backend: Optional[str] = None,
    ) -> LiveJoin:
        """Register (and immediately materialize) a live join view.

        ``shards`` / ``workers`` thread through to the view's
        evaluations: the seed, each maintenance delta term, and
        recomputes fan out across ranges of the first GAO attribute
        (see :class:`~repro.core.incremental.LiveJoin`).
        """
        if name in self._views:
            raise ValueError(f"view {name!r} already registered")
        missing = [n for n in relation_names if n not in self._relations]
        if missing:
            raise KeyError(f"unknown relations {missing} in view {name!r}")
        view = LiveJoin(
            name,
            [self._relations[n] for n in relation_names],
            gao=gao,
            strategy=strategy,
            cds_backend=cds_backend,
            shards=shards,
            workers=workers,
        )
        # Log the *resolved* configuration (gao / cds_backend picked by
        # the view), so replaying the record reconstructs this exact
        # view even if auto-selection heuristics change later.
        self._log_control(
            "view",
            {
                "name": name,
                "relations": list(relation_names),
                "gao": list(view.gao),
                "strategy": view.strategy,
                "shards": view.shards,
                "workers": view.workers,
                "cds_backend": view.cds_backend,
            },
        )
        self._views[name] = view
        return view

    def view(self, name: str) -> LiveJoin:
        try:
            return self._views[name]
        except KeyError:
            raise KeyError(f"no view named {name!r}") from None

    def view_names(self) -> List[str]:
        return list(self._views)

    def query(self, name: str) -> List[Row]:
        """Serve a registered view's current rows."""
        return self.view(name).rows()

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def apply_batch(self, updates: Iterable[Update]) -> BatchReport:
        """Apply one update batch and maintain every registered view.

        Per relation (in the batch's first-appearance order): compute
        the effective delta against current storage, fold it into every
        view that references the relation (pre-update state — the delta
        rule's requirement), then apply it to storage.
        """
        obs = self.obs
        t0 = time.perf_counter()  # lint: disable=determinism -- reporting-only timing; never feeds results
        grouped = net_updates(updates)
        unknown = [n for n in grouped if n not in self._relations]
        if unknown:
            raise KeyError(f"updates reference unknown relations {unknown}")
        # Validate the whole batch (arity, types) before mutating
        # anything, so a bad row can't leave views and storage
        # half-updated.  Each relation is touched once per batch and no
        # relation's update changes another's state, so the effective
        # deltas computed here against the pre-batch state are exactly
        # the per-relation effective deltas of the sequential replay.
        effective = {
            name: self._relations[name].index.effective_delta(
                inserts, deletes
            )
            for name, (inserts, deletes) in grouped.items()
        }
        with obs.tracer.span(
            "apply_batch", batch=self.batches_applied + 1
        ) as bspan:
            if self._wal is not None and not self._replaying and grouped:
                # The whole batch validated; commit it to the log before
                # any view or storage mutation.  The netted form is logged
                # (deletes then inserts per relation, relations in batch
                # order): replaying it recomputes the same effective
                # deltas against the same pre-batch state.
                from repro.testing.faults import crashpoint

                crashpoint("catalog.apply.wal")
                logged: List[Update] = []
                for name, (inserts, deletes) in grouped.items():
                    logged.extend(
                        Update(name, DELETE, row) for row in deletes
                    )
                    logged.extend(
                        Update(name, INSERT, row) for row in inserts
                    )
                with obs.tracer.span(
                    "wal.append", records=len(logged)
                ) as wspan:
                    lsn = self._wal.append_batch(logged)
                    wspan.set("lsn", lsn)
                crashpoint("catalog.apply.mutate")
            self.batches_applied += 1
            self.generation += 1
            report = BatchReport(batch=self.batches_applied)
            view_counters = {name: OpCounters() for name in self._views}
            view_added = dict.fromkeys(self._views, 0)
            view_removed = dict.fromkeys(self._views, 0)
            view_seconds = dict.fromkeys(self._views, 0.0)
            for name, (eff_ins, eff_del) in effective.items():
                relation = self._relations[name]
                for view_name, view in self._views.items():
                    with obs.tracer.span(
                        "view.maintain", view=view_name, relation=name
                    ) as vspan:
                        v0 = time.perf_counter()  # lint: disable=determinism -- reporting-only timing; never feeds results
                        added, removed = view.apply_delta(
                            name, eff_ins, eff_del,
                            counters=view_counters[view_name],
                        )
                        view_seconds[view_name] += (
                            time.perf_counter() - v0  # lint: disable=determinism -- reporting-only timing; never feeds results
                        )
                        vspan.set("rows_added", added)
                        vspan.set("rows_removed", removed)
                    view_added[view_name] += added
                    view_removed[view_name] += removed
                with obs.tracer.span(
                    "storage.apply", relation=name,
                    inserts=len(eff_ins), deletes=len(eff_del),
                ):
                    relation.index.apply_effective(eff_ins, eff_del)
                report.applied[name] = (len(eff_ins), len(eff_del))
            for view_name, view in self._views.items():
                report.views[view_name] = {
                    "rows_added": view_added[view_name],
                    "rows_removed": view_removed[view_name],
                    "rows": len(view),
                    "ops": view_counters[view_name].snapshot(),
                    "seconds": view_seconds[view_name],
                }
            report.seconds = time.perf_counter() - t0  # lint: disable=determinism -- reporting-only timing; never feeds results
            bspan.set("updates", report.updates_applied)
        if obs.enabled:
            obs.metrics.histogram(
                "batch_apply_seconds",
                "Catalog.apply_batch wall time (WAL + views + storage).",
            ).observe(report.seconds)
            for view_name, entry in report.views.items():
                obs.metrics.histogram(
                    "view_maintain_seconds",
                    "Per-batch live-view maintenance wall time.",
                    labels={"view": view_name},
                ).observe(entry["seconds"])
        return report

    # ------------------------------------------------------------------
    # LSM maintenance + introspection
    # ------------------------------------------------------------------

    def flush(self, name: Optional[str] = None) -> None:
        """Seal memtables (one relation, or all)."""
        targets = self._targets(name)  # validates the name first
        with self.obs.tracer.span(
            "flush", relation=name if name is not None else "*"
        ):
            if self._wal is not None and not self._replaying:
                from repro.testing.faults import crashpoint

                self._log_control("flush", {"name": name})
                crashpoint("catalog.flush.mutate")
            for rel in targets:
                rel.index.flush()
            self.generation += 1

    def compact(self, name: Optional[str] = None) -> None:
        """Merge run stacks (one relation, or all)."""
        targets = self._targets(name)
        with self.obs.tracer.span(
            "compact", relation=name if name is not None else "*"
        ):
            if self._wal is not None and not self._replaying:
                from repro.testing.faults import crashpoint

                self._log_control("compact", {"name": name})
                crashpoint("catalog.compact.mutate")
            for rel in targets:
                rel.index.compact()
            self.generation += 1

    def _targets(self, name: Optional[str]) -> List[Relation]:
        return (
            list(self._relations.values())
            if name is None
            else [self.relation(name)]
        )

    # ------------------------------------------------------------------
    # Durability: snapshot / recover / verifiable state
    # ------------------------------------------------------------------

    def snapshot(self, data_dir: Optional[str] = None,
                 truncate_wal: bool = False):
        """Serialize the full catalog state into a new snapshot.

        ``data_dir`` defaults to the directory this catalog was opened
        from (:func:`repro.dynamic.durable.open_catalog`).  With
        ``truncate_wal``, WAL segments wholly covered by the snapshot
        are deleted afterwards.  Returns a
        :class:`~repro.dynamic.snapshot.SnapshotInfo`.
        """
        from repro.dynamic import snapshot as snapshot_mod

        target = data_dir if data_dir is not None else self._data_dir
        if target is None:
            raise ValueError(
                "no data directory: pass data_dir or open the catalog "
                "durably (repro.dynamic.durable.open_catalog)"
            )
        obs = self.obs
        t0 = time.perf_counter()  # lint: disable=determinism -- reporting-only timing; never feeds results
        with obs.tracer.span("snapshot", truncate_wal=truncate_wal) as span:
            fs = self._wal.fs if self._wal is not None else None
            info = snapshot_mod.write_snapshot(self, target, fs=fs)
            if truncate_wal and self._wal is not None:
                self._wal.truncate_through(info.wal_lsn)
            span.set("wal_lsn", info.wal_lsn)
        if obs.enabled:
            obs.metrics.histogram(
                "snapshot_seconds",
                "Catalog snapshot (serialize + optional WAL truncate) "
                "wall time.",
            ).observe(time.perf_counter() - t0)  # lint: disable=determinism -- reporting-only timing; never feeds results
        return info

    @classmethod
    def recover(cls, data_dir: str, **kwargs):
        """Rebuild a catalog: newest valid snapshot + WAL suffix replay.

        Returns ``(catalog, RecoveryReport)``; see
        :func:`repro.dynamic.durable.recover_catalog` for the knobs
        (fsync policy, verification, whether to re-attach the WAL).
        """
        from repro.dynamic.durable import recover_catalog

        return recover_catalog(data_dir, **kwargs)

    def state_roots(self) -> dict:
        """Merkle roots over the current live state (hex-encoded)."""
        from repro.dynamic import merkle

        roots = {
            name: merkle.relation_root(rel.index.tuples())
            for name, rel in self._relations.items()
        }
        return {
            "relations": {n: r.hex() for n, r in roots.items()},
            "catalog_root": merkle.catalog_root(roots).hex(),
        }

    def state_proof(self, name: str, row=None) -> dict:
        """Compact inclusion proof for a relation (and optionally one
        row) against the catalog root — checkable offline with
        :func:`repro.dynamic.merkle.verify_relation_proof`."""
        from repro.dynamic import merkle

        if name not in self._relations:
            raise KeyError(f"no relation named {name!r}")
        rows_by_relation = {
            rel_name: rel.index.tuples()
            for rel_name, rel in self._relations.items()
        }
        return merkle.relation_proof(name, rows_by_relation, row=row)

    def stats(self) -> dict:
        stats = {
            "batches_applied": self.batches_applied,
            "relations": {
                name: rel.index.stats()
                for name, rel in self._relations.items()
            },
            "views": {
                name: {
                    "rows": len(view),
                    "maintenance_ops": view.counters.snapshot(),
                    "initial_ops": view.initial_ops,
                }
                for name, view in self._views.items()
            },
        }
        if self._wal is not None:
            stats["wal"] = self._wal.stats()
        return stats

    def __repr__(self) -> str:
        return (
            f"Catalog({len(self._relations)} relations, "
            f"{len(self._views)} views, "
            f"{self.batches_applied} batches applied)"
        )
