"""Deterministic synthetic update streams for the dynamic subsystem.

Two scenario families, mirroring the repo's static benchmark queries:

* :func:`triangle_stream` — a live triangle view R(A,B) ⋈ S(B,C) ⋈
  T(A,C) over random edge relations, streamed with insert-heavy / mixed
  / delete-heavy batches;
* :func:`intersection_stream` — a live k-way set intersection (k unary
  relations over one shared attribute).

Each returns ``(schemas, initial, batches)``: attribute tuples per
relation, initial rows per relation, and a list of
:class:`~repro.dynamic.catalog.Update` batches.  Everything is driven by
``random.Random(seed)`` so benchmarks and tests replay identical
streams.  :func:`build_catalog` turns one into a served catalog + view.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.incremental import LiveJoin
from repro.dynamic.catalog import Catalog, DELETE, INSERT, Update

Row = Tuple[int, ...]
Stream = Tuple[
    Dict[str, Tuple[str, ...]], Dict[str, List[Row]], List[List[Update]]
]


def _stream_batches(
    rng: random.Random,
    live: Dict[str, set],
    fresh_row,
    n_batches: int,
    batch_size: int,
    insert_fraction: float,
) -> List[List[Update]]:
    """Mix inserts of fresh rows with deletes of live ones, per batch."""
    names = sorted(live)
    batches: List[List[Update]] = []
    for _ in range(n_batches):
        batch: List[Update] = []
        for _ in range(batch_size):
            name = names[rng.randrange(len(names))]
            do_insert = rng.random() < insert_fraction or not live[name]
            if do_insert:
                row = fresh_row(rng, name)
                if row is None:
                    continue
                live[name].add(row)
                batch.append(Update(name, INSERT, row))
            else:
                row = rng.choice(sorted(live[name]))
                live[name].discard(row)
                batch.append(Update(name, DELETE, row))
        batches.append(batch)
    return batches


def _sample_edges(rng: random.Random, n_nodes: int, n_edges: int) -> set:
    if n_edges > n_nodes * n_nodes:
        raise ValueError(
            f"cannot sample {n_edges} distinct edges over {n_nodes} nodes "
            f"(max {n_nodes * n_nodes})"
        )
    edges: set = set()
    while len(edges) < n_edges:
        edges.add((rng.randrange(n_nodes), rng.randrange(n_nodes)))
    return edges


def triangle_stream(
    n_nodes: int = 30,
    n_edges: int = 90,
    n_batches: int = 10,
    batch_size: int = 8,
    insert_fraction: float = 0.5,
    seed: int = 0,
) -> Stream:
    """A streamed triangle instance (edge churn on R, S, T).

    ``insert_fraction`` sets the workload shape: 0.9 ≈ insert-heavy,
    0.5 ≈ mixed, 0.1 ≈ delete-heavy (deletes always target live rows).
    """
    rng = random.Random(seed)
    schemas = {"R": ("A", "B"), "S": ("B", "C"), "T": ("A", "C")}
    live = {name: _sample_edges(rng, n_nodes, n_edges) for name in schemas}
    initial = {name: sorted(rows) for name, rows in live.items()}

    def fresh_row(rng: random.Random, name: str) -> Optional[Row]:
        for _ in range(8 * n_nodes):
            row = (rng.randrange(n_nodes), rng.randrange(n_nodes))
            if row not in live[name]:
                return row
        return None  # relation is (nearly) complete; skip this step

    batches = _stream_batches(
        rng, live, fresh_row, n_batches, batch_size, insert_fraction
    )
    return schemas, initial, batches


def intersection_stream(
    k: int = 3,
    domain: int = 4000,
    n_values: int = 400,
    n_batches: int = 10,
    batch_size: int = 8,
    insert_fraction: float = 0.5,
    seed: int = 0,
) -> Stream:
    """A streamed k-way set intersection (k unary relations over X)."""
    rng = random.Random(seed)
    names = [f"U{i}" for i in range(k)]
    schemas = {name: ("X",) for name in names}
    live: Dict[str, set] = {}
    for name in names:
        values = rng.sample(range(domain), n_values)
        live[name] = {(v,) for v in values}
    initial = {name: sorted(rows) for name, rows in live.items()}

    def fresh_row(rng: random.Random, name: str) -> Optional[Row]:
        for _ in range(8 * domain):
            row = (rng.randrange(domain),)
            if row not in live[name]:
                return row
        return None

    batches = _stream_batches(
        rng, live, fresh_row, n_batches, batch_size, insert_fraction
    )
    return schemas, initial, batches


def replay_with_recompute(
    schemas: Dict[str, Sequence[str]],
    initial: Dict[str, List[Row]],
    batches: List[List[Update]],
    view: str = "Q",
    keys: Sequence[str] = ("findgap", "probes"),
    **build_kwargs,
):
    """Replay a stream incrementally with a per-batch recompute comparator.

    The canonical measurement loop shared by ``bench_dynamic.py`` and the
    workload registry: apply every batch through the catalog, recompute
    the view from scratch after each one (raising if the maintained rows
    diverge), and accumulate both sides' op counts.  Returns
    ``(catalog, live_view, inc_ops, rec_ops)`` where the op dicts map
    each of ``keys`` to its cumulative total.
    """
    catalog, live = build_catalog(schemas, initial, view=view, **build_kwargs)
    inc = {key: 0 for key in keys}
    rec = {key: 0 for key in keys}
    for batch in batches:
        report = catalog.apply_batch(batch)
        rows, ops, _ = live.recompute()
        if rows != live.rows():
            raise RuntimeError(
                f"view {view}: maintained rows diverged from recompute"
            )
        for key in keys:
            inc[key] += report.view_ops(view, key)
            rec[key] += ops.get(key, 0)
    return catalog, live, inc, rec


def build_catalog(
    schemas: Dict[str, Sequence[str]],
    initial: Dict[str, List[Row]],
    view: str = "Q",
    gao: Optional[Sequence[str]] = None,
    memtable_limit: Optional[int] = None,
    strategy: str = "auto",
    cds_backend: Optional[str] = None,
) -> Tuple[Catalog, LiveJoin]:
    """Materialize a stream's initial state into a served catalog."""
    catalog = Catalog(memtable_limit=memtable_limit)
    for name, attributes in schemas.items():
        catalog.create_relation(name, attributes, initial.get(name, ()))
    live = catalog.register_view(
        view, list(schemas), gao=gao, strategy=strategy,
        cds_backend=cds_backend,
    )
    return catalog, live
