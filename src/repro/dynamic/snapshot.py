"""Snapshot/restore: the durable image of a catalog's LSM state.

A snapshot serializes every relation's exact storage layout — each
immutable run's rows and tombstones, plus the pending memtable — into
plain text files under ``<data_dir>/snapshots/snap-<id>/``, described
by a ``MANIFEST.json`` recording the schema, registered views, catalog
generation, the WAL position the image corresponds to, per-file SHA-256
hashes, and the Merkle state roots (:mod:`repro.dynamic.merkle`).

The manifest is the snapshot's commit record: it is written to a temp
file and atomically renamed into place *last*, so a crash anywhere
during snapshotting leaves a directory without a valid manifest, which
recovery skips in favour of the previous snapshot (the WAL still holds
everything since then).  Loading verifies the manifest's own checksum
and every data file's hash, so a tampered or bit-rotten run file is
rejected, never silently served.

File formats (all text, one entry per line):

* ``<rel>.run<k>.rows`` / ``<rel>.run<k>.tombs`` — ``v1,v2,...``
* ``<rel>.memtable`` — ``+v1,v2`` (live insert) / ``-v1,v2``
  (tombstone), in memtable insertion order.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.dynamic import merkle
from repro.testing.faults import REAL_FS, FileSystem, crashpoint

FORMAT = "repro-snapshot-v1"
MANIFEST = "MANIFEST.json"
SNAPSHOTS_DIR = "snapshots"
_SNAP_PREFIX = "snap-"

Row = Tuple[int, ...]


class SnapshotError(ValueError):
    """A snapshot directory is missing, incomplete, or fails checks."""


class SnapshotInfo(NamedTuple):
    path: str
    snapshot_id: int
    wal_lsn: int
    generation: int
    catalog_root: str
    seconds: float


def _snap_dir_id(name: str) -> Optional[int]:
    if not name.startswith(_SNAP_PREFIX):
        return None
    tail = name[len(_SNAP_PREFIX):]
    return int(tail) if tail.isdigit() else None


def list_snapshots(data_dir: str) -> List[Tuple[int, str]]:
    """``(id, path)`` of every snapshot directory, newest first."""
    root = os.path.join(data_dir, SNAPSHOTS_DIR)
    if not os.path.isdir(root):
        return []
    found = []
    for name in os.listdir(root):
        snap_id = _snap_dir_id(name)
        if snap_id is not None:
            found.append((snap_id, os.path.join(root, name)))
    return sorted(found, reverse=True)


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _manifest_checksum(manifest: dict) -> str:
    trimmed = {k: v for k, v in manifest.items() if k != "checksum"}
    return _sha256(
        json.dumps(trimmed, sort_keys=True, separators=(",", ":"))
    )


def _rows_text(rows) -> str:
    return "".join(",".join(map(str, row)) + "\n" for row in rows)


def _memtable_text(entries) -> str:
    return "".join(
        ("+" if live else "-") + ",".join(map(str, row)) + "\n"
        for row, live in entries
    )


def _parse_rows(text: str, path: str) -> List[Row]:
    rows: List[Row] = []
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            rows.append(tuple(int(v) for v in line.split(",")))
        except ValueError:
            raise SnapshotError(
                f"{path}: line {lineno}: non-integer row {line!r}"
            ) from None
    return rows


def _parse_memtable(text: str, path: str) -> List[Tuple[Row, bool]]:
    entries: List[Tuple[Row, bool]] = []
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        if line[0] not in "+-":
            raise SnapshotError(
                f"{path}: line {lineno}: expected '+row' or '-row', "
                f"got {line!r}"
            )
        try:
            row = tuple(int(v) for v in line[1:].split(","))
        except ValueError:
            raise SnapshotError(
                f"{path}: line {lineno}: non-integer row {line!r}"
            ) from None
        entries.append((row, line[0] == "+"))
    return entries


def _write_file(fs: FileSystem, path: str, text: str) -> str:
    """Write + fsync one snapshot data file; returns its SHA-256."""
    with fs.open(path, "w", encoding="utf-8", newline="\n") as handle:
        handle.write(text)
        fs.fsync(handle)
    return _sha256(text)


def write_snapshot(
    catalog, data_dir: str, fs: Optional[FileSystem] = None
) -> SnapshotInfo:
    """Serialize ``catalog`` into a new snapshot under ``data_dir``.

    The catalog's attached WAL (if any) provides the recorded LSN:
    replay after restore starts just past it.  Safe to call on a
    non-durable catalog too (LSN 0 — restore then replays nothing).
    """
    t0 = time.perf_counter()  # lint: disable=determinism -- reporting-only timing; never feeds results
    fs = fs if fs is not None else REAL_FS
    existing = list_snapshots(data_dir)
    snap_id = (existing[0][0] + 1) if existing else 1
    snap_path = os.path.join(
        data_dir, SNAPSHOTS_DIR, f"{_SNAP_PREFIX}{snap_id:08d}"
    )
    fs.makedirs(snap_path)
    crashpoint("snapshot.begin")
    wal = catalog.wal
    wal_lsn = wal.last_lsn if wal is not None else 0
    relations: Dict[str, dict] = {}
    roots: Dict[str, bytes] = {}
    for name in catalog.relation_names():
        relation = catalog.relation(name)
        delta = relation.index
        runs = []
        for k, (rows, tombstones) in enumerate(delta.run_states()):
            rows_file = f"{name}.run{k:02d}.rows"
            tombs_file = f"{name}.run{k:02d}.tombs"
            rows_text = _rows_text(rows)
            tombs_text = _rows_text(tombstones)
            runs.append(
                {
                    "rows": rows_file,
                    "rows_sha256": _write_file(
                        fs, os.path.join(snap_path, rows_file), rows_text
                    ),
                    "rows_count": len(rows),
                    "tombstones": tombs_file,
                    "tombstones_sha256": _write_file(
                        fs, os.path.join(snap_path, tombs_file), tombs_text
                    ),
                    "tombstones_count": len(tombstones),
                }
            )
        memtable_file = f"{name}.memtable"
        memtable_entries = delta.memtable_state()
        memtable_sha = _write_file(
            fs,
            os.path.join(snap_path, memtable_file),
            _memtable_text(memtable_entries),
        )
        live = delta.tuples()
        roots[name] = merkle.relation_root(live)
        relations[name] = {
            "attributes": list(relation.attributes),
            "memtable_limit": delta.memtable_limit,
            "runs": runs,
            "memtable": {
                "file": memtable_file,
                "sha256": memtable_sha,
                "entries": len(memtable_entries),
            },
            "live_rows": len(live),
            "root": roots[name].hex(),
        }
        crashpoint("snapshot.relation")
    views = {}
    for view_name in catalog.view_names():
        view = catalog.view(view_name)
        views[view_name] = {
            "relations": [r.name for r in view.relations],
            "gao": list(view.gao),
            "strategy": view.strategy,
            "shards": view.shards,
            "workers": view.workers,
            "cds_backend": view.cds_backend,
        }
    manifest = {
        "format": FORMAT,
        "snapshot_id": snap_id,
        "generation": catalog.generation,
        "batches_applied": catalog.batches_applied,
        "memtable_limit": catalog.memtable_limit,
        "wal_lsn": wal_lsn,
        "relations": relations,
        "views": views,
        "catalog_root": merkle.catalog_root(roots).hex(),
    }
    manifest["checksum"] = _manifest_checksum(manifest)
    manifest_path = os.path.join(snap_path, MANIFEST)
    tmp_path = manifest_path + ".tmp"
    with fs.open(tmp_path, "w", encoding="utf-8", newline="\n") as handle:
        handle.write(json.dumps(manifest, sort_keys=True, indent=2) + "\n")
        fs.fsync(handle)
    crashpoint("snapshot.manifest.write")
    crashpoint("snapshot.rename")
    fs.replace(tmp_path, manifest_path)
    # The rename (and every data file created above) is only durable
    # once the directory entries themselves are synced; without this a
    # power loss can make the manifest — or the whole snapshot — vanish.
    fs.fsync_dir(snap_path)
    fs.fsync_dir(os.path.dirname(snap_path))
    return SnapshotInfo(
        path=snap_path,
        snapshot_id=snap_id,
        wal_lsn=wal_lsn,
        generation=catalog.generation,
        catalog_root=manifest["catalog_root"],
        seconds=time.perf_counter() - t0,  # lint: disable=determinism -- reporting-only timing; never feeds results
    )


def load_manifest(snap_path: str, fs: Optional[FileSystem] = None) -> dict:
    """Read and checksum-validate a snapshot's manifest."""
    fs = fs if fs is not None else REAL_FS
    manifest_path = os.path.join(snap_path, MANIFEST)
    try:
        with fs.open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except FileNotFoundError:
        raise SnapshotError(
            f"{snap_path}: no manifest (incomplete snapshot)"
        ) from None
    except (OSError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"{manifest_path}: unreadable: {exc}") from None
    if manifest.get("format") != FORMAT:
        raise SnapshotError(
            f"{manifest_path}: unknown format "
            f"{manifest.get('format')!r}"
        )
    if manifest.get("checksum") != _manifest_checksum(manifest):
        raise SnapshotError(
            f"{manifest_path}: manifest checksum mismatch (tampered or "
            "corrupt manifest)"
        )
    return manifest


class RelationState(NamedTuple):
    attributes: Tuple[str, ...]
    memtable_limit: Optional[int]
    runs: List[Tuple[List[Row], List[Row]]]
    memtable: List[Tuple[Row, bool]]


def load_snapshot(
    snap_path: str,
    verify: bool = True,
    fs: Optional[FileSystem] = None,
) -> Tuple[dict, Dict[str, RelationState]]:
    """``(manifest, per-relation state)`` from a snapshot directory.

    With ``verify`` (the default), every data file's SHA-256 must match
    the manifest — a tampered run/tombstone/memtable file raises
    :class:`SnapshotError` instead of loading.
    """
    fs = fs if fs is not None else REAL_FS
    manifest = load_manifest(snap_path, fs=fs)

    def read_file(filename: str, expected_sha: str) -> str:
        path = os.path.join(snap_path, filename)
        try:
            with fs.open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise SnapshotError(f"{path}: unreadable: {exc}") from None
        if verify and _sha256(text) != expected_sha:
            raise SnapshotError(
                f"{path}: content hash mismatch (tampered or corrupt "
                "snapshot file)"
            )
        return text

    states: Dict[str, RelationState] = {}
    for name, entry in manifest["relations"].items():
        runs: List[Tuple[List[Row], List[Row]]] = []
        for run in entry["runs"]:
            rows = _parse_rows(
                read_file(run["rows"], run["rows_sha256"]), run["rows"]
            )
            tombs = _parse_rows(
                read_file(run["tombstones"], run["tombstones_sha256"]),
                run["tombstones"],
            )
            if verify and (
                len(rows) != run["rows_count"]
                or len(tombs) != run["tombstones_count"]
            ):
                raise SnapshotError(
                    f"{snap_path}: {name} run file row counts disagree "
                    "with manifest"
                )
            runs.append((rows, tombs))
        memtable = _parse_memtable(
            read_file(
                entry["memtable"]["file"], entry["memtable"]["sha256"]
            ),
            entry["memtable"]["file"],
        )
        states[name] = RelationState(
            attributes=tuple(entry["attributes"]),
            memtable_limit=entry["memtable_limit"],
            runs=runs,
            memtable=memtable,
        )
    return manifest, states


def newest_valid_snapshot(
    data_dir: str, fs: Optional[FileSystem] = None
) -> Optional[Tuple[int, str, dict]]:
    """The newest snapshot whose manifest validates, or ``None``.

    Incomplete snapshots (a crash before the manifest rename) are
    skipped silently — that is the designed crash behaviour, not an
    error; recovery falls back to the previous image + longer WAL
    replay.
    """
    for snap_id, path in list_snapshots(data_dir):
        try:
            manifest = load_manifest(path, fs=fs)
        except SnapshotError:
            continue
        return snap_id, path, manifest
    return None
