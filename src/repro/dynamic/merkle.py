"""Merkle-hashed catalog state: roots, inclusion proofs, verification.

The paper's certificates prove an *answer* is correct; this module
extends the same discipline to *state*.  Three hash layers:

* **row leaves** — each live tuple hashes to
  ``sha256(0x00 || "v1,v2,...")``;
* **relation roots** — the Merkle root over a relation's live tuples in
  lexicographic (GAO) order.  Any insert, delete, or tampered value
  changes the root;
* **catalog root** — the Merkle root over
  ``sha256(0x00 || name || 0x00 || relation_root)`` leaves, relations
  sorted by name.

Interior nodes hash as ``sha256(0x01 || left || right)``; an odd node
is promoted unchanged (no duplication), so a proof path simply skips
levels where the node has no sibling.  Domain-separating leaf and node
hashes (the ``0x00`` / ``0x01`` prefixes) blocks second-preimage
splices of interior nodes as leaves.

A replica or client holding only a trusted catalog root can check a
:func:`relation_proof` offline — and, with a ``row`` attached, that a
specific tuple is part of the committed state — without downloading
the relation.  ``repro verify-state`` uses the same primitives to
recompute roots from snapshot files and reject any tampered run.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

Row = Tuple[int, ...]

_LEAF = b"\x00"
_NODE = b"\x01"

#: Root of an empty leaf sequence (e.g. a relation with no live rows).
EMPTY_ROOT = hashlib.sha256(b"repro-merkle-empty").digest()


def leaf_hash(data: bytes) -> bytes:
    return hashlib.sha256(_LEAF + data).digest()


def node_hash(left: bytes, right: bytes) -> bytes:
    return hashlib.sha256(_NODE + left + right).digest()


def row_leaf(row: Sequence[int]) -> bytes:
    """The canonical leaf for one tuple (same text as the log format)."""
    return leaf_hash(",".join(map(str, row)).encode("utf-8"))


def relation_leaf(name: str, relation_root: bytes) -> bytes:
    """The catalog-level leaf binding a relation name to its root."""
    return leaf_hash(name.encode("utf-8") + b"\x00" + relation_root)


def merkle_root(leaves: Sequence[bytes]) -> bytes:
    """Fold leaves pairwise to a single root (odd nodes promote)."""
    if not leaves:
        return EMPTY_ROOT
    level = list(leaves)
    while len(level) > 1:
        paired = [
            node_hash(level[i], level[i + 1])
            for i in range(0, len(level) - 1, 2)
        ]
        if len(level) % 2:
            paired.append(level[-1])
        level = paired
    return level[0]


def merkle_proof(
    leaves: Sequence[bytes], index: int
) -> List[Tuple[str, str]]:
    """Sibling path for ``leaves[index]`` as ``(side, hex)`` pairs.

    ``side`` is which side the *sibling* sits on (``"L"`` or ``"R"``).
    Levels where the node is promoted without a sibling contribute no
    entry, matching :func:`merkle_root`'s promote-odd rule.
    """
    if not 0 <= index < len(leaves):
        raise IndexError(
            f"leaf index {index} out of range for {len(leaves)} leaves"
        )
    path: List[Tuple[str, str]] = []
    level = list(leaves)
    position = index
    while len(level) > 1:
        sibling = position ^ 1
        if sibling < len(level):
            side = "L" if sibling < position else "R"
            path.append((side, level[sibling].hex()))
        paired = [
            node_hash(level[i], level[i + 1])
            for i in range(0, len(level) - 1, 2)
        ]
        if len(level) % 2:
            paired.append(level[-1])
        level = paired
        position //= 2
    return path


def fold_proof(leaf: bytes, path: Iterable[Tuple[str, str]]) -> bytes:
    """Recompute the root implied by ``leaf`` and a sibling path."""
    node = leaf
    for side, sibling_hex in path:
        sibling = bytes.fromhex(sibling_hex)
        if side == "L":
            node = node_hash(sibling, node)
        elif side == "R":
            node = node_hash(node, sibling)
        else:
            raise ValueError(f"proof side must be 'L' or 'R', got {side!r}")
    return node


def verify_proof(
    root_hex: str, leaf: bytes, path: Iterable[Tuple[str, str]]
) -> bool:
    return fold_proof(leaf, path).hex() == root_hex


# ----------------------------------------------------------------------
# Catalog state roots and proofs
# ----------------------------------------------------------------------


def relation_root(rows: Sequence[Row]) -> bytes:
    """Merkle root over a relation's live tuples (must be sorted)."""
    return merkle_root([row_leaf(row) for row in rows])


def catalog_root(relation_roots: Dict[str, bytes]) -> bytes:
    """Merkle root over per-relation roots, relations sorted by name."""
    return merkle_root(
        [
            relation_leaf(name, relation_roots[name])
            for name in sorted(relation_roots)
        ]
    )


def relation_proof(
    name: str,
    rows_by_relation: Dict[str, Sequence[Row]],
    row: Optional[Row] = None,
) -> dict:
    """A compact, offline-checkable proof of a relation's state.

    The proof binds ``name``'s relation root into the catalog root; if
    ``row`` is given it additionally proves that tuple's inclusion in
    the relation root.  Verify with :func:`verify_relation_proof`
    against an independently trusted ``catalog_root``.
    """
    if name not in rows_by_relation:
        raise KeyError(f"no relation named {name!r}")
    roots = {
        rel: relation_root(rows) for rel, rows in rows_by_relation.items()
    }
    names = sorted(roots)
    catalog_leaves = [relation_leaf(n, roots[n]) for n in names]
    proof = {
        "format": "repro-state-proof-v1",
        "relation": name,
        "relation_root": roots[name].hex(),
        "catalog_root": merkle_root(catalog_leaves).hex(),
        "n_relations": len(names),
        "path": merkle_proof(catalog_leaves, names.index(name)),
    }
    if row is not None:
        rows = list(rows_by_relation[name])
        row = tuple(row)
        try:
            index = rows.index(row)
        except ValueError:
            raise KeyError(
                f"row {row} is not live in relation {name!r}"
            ) from None
        proof["row"] = list(row)
        proof["row_path"] = merkle_proof(
            [row_leaf(r) for r in rows], index
        )
    return proof


def verify_relation_proof(
    proof: dict, trusted_catalog_root: Optional[str] = None
) -> bool:
    """Check a :func:`relation_proof` without any catalog access.

    Verifies the relation-root → catalog-root path, the row → relation
    root path when present, and (optionally) that the proof's catalog
    root matches an independently obtained trusted root.
    """
    relation_root_hex = proof["relation_root"]
    leaf = relation_leaf(
        proof["relation"], bytes.fromhex(relation_root_hex)
    )
    if not verify_proof(proof["catalog_root"], leaf, proof["path"]):
        return False
    if "row" in proof:
        if not verify_proof(
            relation_root_hex,
            row_leaf(tuple(proof["row"])),
            proof["row_path"],
        ):
            return False
    if trusted_catalog_root is not None:
        return proof["catalog_root"] == trusted_catalog_root
    return True
