"""E5 — Examples B.3/B.4: the GAO changes |C| from Θ(N²·ish) to Θ(N).

Same data, two attribute orders.  Under (A, B, C) the optimal certificate
needs same-relation equalities and is quadratic in n; under the nested
elimination order (C, A, B) it is linear, and Minesweeper's measured work
follows suit.  ``choose_gao`` must pick the cheap order by itself.
"""

import pytest

from repro.core.engine import join
from repro.datasets.instances import interleaved_parity

from benchmarks._util import once, record

SIZES = [4, 8, 16]


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("gao_name,gao", [("ABC", ["A", "B", "C"]), ("CAB", ["C", "A", "B"])])
def test_gao_flip(benchmark, n, gao_name, gao):
    inst = interleaved_parity(n, gao)
    result = once(benchmark, lambda: join(inst.query, gao=inst.gao))
    assert result.rows == []
    record(
        benchmark,
        "E5_gao_dependence",
        f"{gao_name}/n={n}",
        {
            "analytic_certificate": inst.certificate_size,
            "work": result.counters.total_work(),
            "probes": result.counters.probes,
        },
    )


@pytest.mark.parametrize("n", [12])
def test_neo_wins(benchmark, n):
    bad = interleaved_parity(n, ["A", "B", "C"])
    good = interleaved_parity(n, ["C", "A", "B"])
    work_bad = join(bad.query, gao=bad.gao).counters.total_work()
    result = once(benchmark, lambda: join(good.query, gao=good.gao))
    work_good = result.counters.total_work()
    record(
        benchmark,
        "E5_gao_dependence",
        f"gap/n={n}",
        {"work_ABC": work_bad, "work_CAB": work_good,
         "speedup": round(work_bad / work_good, 2)},
    )
    assert work_good * 4 < work_bad
    gao, kind = good.query.choose_gao()
    assert kind == "neo" and gao[0] == "C"
