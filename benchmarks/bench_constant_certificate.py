"""E4 — Examples B.1/B.2: constant-size certificates on growing inputs.

Minesweeper's probe count stays flat as N grows 100x (B.1, empty output)
or tracks Z alone (B.2); Yannakakis scans all of N.  This is the
"sublinear in the input" behaviour worst-case analysis cannot express.
"""

import pytest

from repro.baselines.yannakakis import yannakakis_join
from repro.core.engine import join
from repro.datasets.instances import (
    constant_certificate_empty,
    constant_certificate_large_output,
)
from repro.util.counters import OpCounters

from benchmarks._util import once, record, sizes

SIZES = sizes([100, 1_000, 10_000], [60])


@pytest.mark.parametrize("n", SIZES)
def test_b1_minesweeper(benchmark, n):
    inst = constant_certificate_empty(n)
    result = once(benchmark, lambda: join(inst.query, gao=inst.gao))
    assert result.rows == []
    record(
        benchmark,
        "E4_constant_certificate",
        f"B1/minesweeper/n={n}",
        {"probes": result.counters.probes, "findgap": result.counters.findgap},
    )
    assert result.counters.probes <= 5  # flat, independent of n


@pytest.mark.parametrize("n", SIZES)
def test_b1_yannakakis(benchmark, n):
    inst = constant_certificate_empty(n)
    counters = OpCounters()
    rows = once(benchmark, lambda: yannakakis_join(inst.query, inst.gao, counters))
    assert rows == []
    record(
        benchmark,
        "E4_constant_certificate",
        f"B1/yannakakis/n={n}",
        {"comparisons": counters.comparisons},
    )
    assert counters.comparisons >= 2 * n  # full scans


@pytest.mark.parametrize("n", SIZES)
def test_b2_output_bound(benchmark, n):
    inst = constant_certificate_large_output(n)
    result = once(benchmark, lambda: join(inst.query, gao=inst.gao))
    assert len(result) == n
    record(
        benchmark,
        "E4_constant_certificate",
        f"B2/minesweeper/n={n}",
        {"probes": result.counters.probes, "Z": n},
    )
    assert result.counters.probes <= 2 * n + 8  # |C| = 1: all work is output
