"""E3 — Appendix J: worst-case-optimal algorithms are ω(|C|) here.

The chunked 5-path family hides an O(m·M) certificate; Minesweeper's work
grows linearly in M while Yannakakis pays Θ(N) = Θ(m·M²) and LFTJ / NPRR
enumerate the dangling chunk prefixes.  The recorded gap must widen as M
doubles (who-wins + growth shape of the paper's claim).
"""

import pytest

from repro.baselines.generic_join import generic_join
from repro.baselines.leapfrog import leapfrog_triejoin
from repro.baselines.yannakakis import yannakakis_join
from repro.core.engine import join
from repro.datasets.instances import appendix_j_path
from repro.util.counters import OpCounters

from benchmarks._util import once, record

BLOCKS = [8, 16, 32]


def _instance(block):
    return appendix_j_path(5, block)


@pytest.mark.parametrize("block", BLOCKS)
def test_minesweeper(benchmark, block):
    inst = _instance(block)
    result = once(benchmark, lambda: join(inst.query, gao=inst.gao))
    assert result.rows == []
    record(
        benchmark,
        "E3_appendixJ",
        f"minesweeper/M={block}",
        {"work": result.counters.total_work(), "N": inst.query.total_tuples()},
    )


@pytest.mark.parametrize("block", BLOCKS)
def test_leapfrog(benchmark, block):
    inst = _instance(block)
    prepared = inst.query.with_gao(inst.gao)
    counters = OpCounters()
    rows = once(benchmark, lambda: leapfrog_triejoin(prepared, counters))
    assert rows == []
    record(
        benchmark,
        "E3_appendixJ",
        f"leapfrog/M={block}",
        {"work": counters.total_work()},
    )


@pytest.mark.parametrize("block", BLOCKS)
def test_generic_join(benchmark, block):
    inst = _instance(block)
    prepared = inst.query.with_gao(inst.gao)
    counters = OpCounters()
    rows = once(benchmark, lambda: generic_join(prepared, counters))
    assert rows == []
    record(
        benchmark,
        "E3_appendixJ",
        f"nprr/M={block}",
        {"work": counters.total_work()},
    )


@pytest.mark.parametrize("block", BLOCKS)
def test_yannakakis(benchmark, block):
    inst = _instance(block)
    counters = OpCounters()
    rows = once(benchmark, lambda: yannakakis_join(inst.query, inst.gao, counters))
    assert rows == []
    record(
        benchmark,
        "E3_appendixJ",
        f"yannakakis/M={block}",
        {"work": counters.total_work()},
    )


def test_gap_widens():
    """The headline claim: baseline/Minesweeper work ratio grows with M."""
    ratios = []
    for block in (8, 32):
        inst = _instance(block)
        ms = join(inst.query, gao=inst.gao).counters.total_work()
        lf = OpCounters()
        leapfrog_triejoin(inst.query.with_gao(inst.gao), lf)
        ratios.append(lf.total_work() / ms)
    assert ratios[1] > 3 * ratios[0]


@pytest.mark.parametrize("block", [16, 32])
def test_best_of_baselines_still_loses(benchmark, block):
    """§4.4's parallel remark: even a perfect oracle running all three
    worst-case-optimal algorithms in parallel (charged only the cheapest
    one's work) stays ω(|C|) and behind Minesweeper at scale."""
    inst = _instance(block)
    ms = join(inst.query, gao=inst.gao).counters.total_work()

    def best_of_baselines():
        prepared = inst.query.with_gao(inst.gao)
        lf = OpCounters()
        leapfrog_triejoin(prepared, lf)
        np_counters = OpCounters()
        generic_join(prepared, np_counters)
        ya = OpCounters()
        yannakakis_join(inst.query, inst.gao, ya)
        return min(
            lf.total_work(), np_counters.total_work(), ya.total_work()
        )

    best = once(benchmark, best_of_baselines)
    record(
        benchmark,
        "E3_appendixJ",
        f"best_of_baselines/M={block}",
        {"best_baseline_work": best, "minesweeper_work": ms},
    )
    assert best > 1.2 * ms
