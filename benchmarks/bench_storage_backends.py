"""Micro-benchmark: pointer-trie vs flat (CSR) trie vs B-tree backends.

Measures, on identical randomized relations, the two costs a storage
backend pays in this system: **build** (index construction from tuples)
and **probe** (a fixed schedule of ``find_gap`` calls at mixed depths —
the only operation the paper's engines issue in their inner loops).

All three backends answer every probe identically (asserted here; the
full property-based equivalence suite is ``tests/test_flat_trie.py``);
only the constant factors differ.  Results land in
``benchmarks/results/summary.csv`` via ``_util.record``.
"""

import random

import pytest

from repro.storage.btree import BTree
from repro.storage.flat_trie import FlatTrieRelation
from repro.storage.trie import TrieRelation

from benchmarks._util import record, sizes

BACKENDS = ["trie", "flat", "btree"]
N_TUPLES = sizes(20_000, 400)
DOMAIN = sizes(120, 20)
N_PROBES = sizes(30_000, 500)


def _relation(seed: int = 7):
    rng = random.Random(seed)
    return sorted(
        {
            (
                rng.randrange(DOMAIN),
                rng.randrange(DOMAIN),
                rng.randrange(DOMAIN),
            )
            for _ in range(N_TUPLES)
        }
    )


def _build(backend: str, rows):
    if backend == "flat":
        return FlatTrieRelation(rows, arity=3)
    if backend == "btree":
        # The paper's B-tree claim: key consistently with the GAO, then
        # the trie interface is realized over the B-tree's ordering.
        return TrieRelation(list(BTree(rows)), arity=3)
    return TrieRelation(rows, arity=3)


def _probe_schedule(rows, seed: int = 11):
    """Deterministic (index tuple, target) pairs at mixed depths.

    Chains are derived once, outside any timed region, and are valid for
    every backend (all backends index the same sorted tuple set).
    """
    rng = random.Random(seed)
    resolver = TrieRelation(rows, arity=3)
    schedule = []
    for _ in range(N_PROBES):
        depth = rng.randrange(3)
        row = rows[rng.randrange(len(rows))]
        chain = ()
        for value in row[:depth]:
            lo, hi = resolver.find_gap(chain, value)
            assert lo == hi, "prefix values are drawn from existing rows"
            chain = chain + (lo,)
        schedule.append((chain, rng.randrange(DOMAIN + 2)))
    return schedule


def _run_probes(index, schedule):
    out = 0
    find_gap = index.find_gap
    for chain, target in schedule:
        lo, hi = find_gap(chain, target)
        out += lo + hi
    return out


@pytest.mark.parametrize("backend", BACKENDS)
def test_build(benchmark, backend):
    rows = _relation()
    index = benchmark.pedantic(
        lambda: _build(backend, rows), rounds=3, iterations=1
    )
    assert len(index) == len(rows)
    record(
        benchmark,
        "REG_storage_backends",
        f"build/{backend}",
        {"tuples": len(rows)},
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_probe(benchmark, backend):
    rows = _relation()
    schedule = _probe_schedule(rows)
    index = _build(backend, rows)
    reference = _run_probes(_build("trie", rows), schedule)
    checksum = benchmark.pedantic(
        lambda: _run_probes(index, schedule), rounds=3, iterations=1
    )
    assert checksum == reference  # identical answers across backends
    record(
        benchmark,
        "REG_storage_backends",
        f"probe/{backend}",
        {"probes": N_PROBES, "checksum": checksum},
    )
