"""Sharded-execution scaling curve: 1/2/4/8 workers, triangle + intersection.

For each family the bench runs the unsharded sequential engine, then the
sharded executor at ``workers = shards = w`` for each point of the
curve, asserting the parallel contract before recording any timing:

* every configuration returns the sequential run's exact row list;
* the pooled run's merged (shard-summed) op counts equal the in-process
  sequential-mode (``workers=0``) run's counts for the same plan —
  multiprocessing must not change what work was done, only where.

Timings are min-over-rounds wall clock.  The headline ≥1.6x speedup
assertion (4 workers vs 1 on the triangle family) only fires when the
host actually has ≥ 4 usable cores and the run is not a smoke run; on a
single-core box the curve is still measured and recorded, and shard
planning itself often wins a little wall-clock anyway (four small
constraint trees beat one large one).

Smoke mode (``repro bench --smoke``) shrinks the inputs and runs the
curve at 1 and 2 workers, so CI exercises a real 2-worker pool.
"""

import os
import time

import pytest

from repro.core.engine import join
from repro.core.query import Query
from repro.datasets.instances import (
    intersection_interleaved,
    triangle_with_output,
)
from repro.storage.relation import Relation
from repro.util.counters import NullCounters, OpCounters

from benchmarks._util import record, sizes, smoke_mode

ROUNDS = sizes(3, 1)
WORKER_COUNTS = sizes([1, 2, 4, 8], [1, 2])
#: The acceptance pair for the speedup assertion (vs-workers, at-workers).
SPEEDUP_POINT = (1, 4)
MIN_SPEEDUP = 1.6

TRIANGLE_CASES = sizes(
    [("planted/n=500", lambda: triangle_with_output(500, 120, seed=5))],
    [("planted/n=40", lambda: triangle_with_output(40, 10, seed=5))],
)
INTERSECTION_CASES = sizes(
    [("interleaved/n=20000", lambda: intersection_interleaved(20_000))],
    [("interleaved/n=400", lambda: intersection_interleaved(400))],
)


def _triangle_query(make):
    r, s, t = make()
    return lambda: Query(
        [
            Relation("R", ["A", "B"], r),
            Relation("S", ["B", "C"], s),
            Relation("T", ["A", "C"], t),
        ]
    )


def _unary_query(make):
    sets = make()
    return lambda: Query(
        [
            Relation(f"R{i}", ["A"], [(v,) for v in vals])
            for i, vals in enumerate(sets)
        ]
    )


def _min_time(func):
    best = None
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        func()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best


def _scaling_curve(benchmark, family, case, make_query, gao):
    """Assert the parallel contract, measure the curve, record it."""
    seq_counters = OpCounters()
    seq = join(make_query(), gao=gao, counters=seq_counters)
    metrics = {"rows": len(seq.rows)}
    metrics["seq_findgap"] = seq_counters.findgap
    metrics["seq_probes"] = seq_counters.probes
    metrics["seq_s"] = _min_time(
        lambda: join(make_query(), gao=gao, counters=NullCounters())
    )
    times = {}
    for w in WORKER_COUNTS:
        # correctness + op-count parity first: pooled merged counts must
        # equal the deterministic in-process run of the same plan
        inproc = join(make_query(), gao=gao, shards=w, workers=0)
        pooled = join(make_query(), gao=gao, shards=w, workers=w)
        assert inproc.rows == seq.rows
        assert pooled.rows == seq.rows
        assert pooled.stats() == inproc.stats()
        metrics[f"w{w}_findgap"] = pooled.counters.findgap
        # then the timed pooled run (counting-free fast path)
        times[w] = _min_time(
            lambda w=w: join(
                make_query(),
                gao=gao,
                shards=w,
                workers=w,
                counters=NullCounters(),
            )
        )
        metrics[f"w{w}_s"] = times[w]
    base_w, at_w = SPEEDUP_POINT
    if base_w in times and at_w in times:
        metrics["speedup_w4"] = round(times[base_w] / times[at_w], 3)
    # one representative pooled config for the pytest-benchmark JSON
    top = WORKER_COUNTS[-1] if smoke_mode() else SPEEDUP_POINT[1]
    benchmark.pedantic(
        lambda: join(
            make_query(),
            gao=gao,
            shards=top,
            workers=top,
            counters=NullCounters(),
        ),
        rounds=ROUNDS,
        iterations=1,
    )
    record(benchmark, f"PAR_{family}", case, metrics)
    if (
        family == "triangle"
        and not smoke_mode()
        and at_w in times
        and (os.cpu_count() or 1) >= at_w
    ):
        assert times[base_w] >= MIN_SPEEDUP * times[at_w], (
            f"expected >= {MIN_SPEEDUP}x speedup at {at_w} workers "
            f"(got {times[base_w] / times[at_w]:.2f}x)"
        )


@pytest.mark.parametrize("case,make", TRIANGLE_CASES)
def test_parallel_scaling_triangle(benchmark, case, make):
    _scaling_curve(
        benchmark, "triangle", case, _triangle_query(make), ["A", "B", "C"]
    )


@pytest.mark.parametrize("case,make", INTERSECTION_CASES)
def test_parallel_scaling_intersection(benchmark, case, make):
    _scaling_curve(
        benchmark, "intersection", case, _unary_query(make), ["A"]
    )
