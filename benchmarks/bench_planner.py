"""Plan-cold vs plan-cached serving (the ISSUE 5 amortization claim).

For each ``planner/*`` workload pair this measures a cold execution
(fresh session: parse + plan + execute) against a cached one (warm
session: parse + cache hit + execute) on identical data, asserts the
cache contract — identical rows, *zero* planner calls on the cached
path — and records both timings into ``summary.csv`` / the
pytest-benchmark JSON, so the cached-vs-cold trajectory is a diffable
artifact.

The wall-clock ratio is machine-dependent and not asserted (the call
counters are the gate); the committed ``BENCH_*.json`` records it.
"""

import time

import pytest

from benchmarks._util import once, record, smoke_mode
import benchmarks._workloads as workloads

_SMOKE = smoke_mode()
_REGISTRY = workloads.SMOKE_WORKLOADS if _SMOKE else workloads.WORKLOADS
_N = 40 if _SMOKE else 300


def _case(mode: str) -> str:
    return f"planner/triangle/plan={mode}/n={_N}"


def test_cached_plan_skips_planning():
    """The cache contract, asserted on call counters and rows."""
    from repro.datasets.instances import triangle_with_output
    from repro.dynamic import Catalog
    from repro.serve import Session

    r, s, t = triangle_with_output(_N, _N // 4, seed=5)
    catalog = Catalog()
    catalog.create_relation("R", ["A", "B"], r)
    catalog.create_relation("S", ["B", "C"], s)
    catalog.create_relation("T", ["A", "C"], t)
    session = Session(catalog)
    text = "Q(x, y, z) :- R(x, y), S(y, z), T(x, z)"
    first = session.execute(text)
    built = session.planner.plans_built
    estimates = session.planner.estimate_runs
    second = session.execute(text)
    assert second.cached_plan and not first.cached_plan
    assert session.planner.plans_built == built
    assert session.planner.estimate_runs == estimates
    assert second.rows == first.rows
    # ... and a catalog mutation re-opens planning exactly once.
    from repro.dynamic import Update

    catalog.apply_batch([Update("R", "+", (0, 1))])
    third = session.execute(text)
    assert not third.cached_plan
    assert session.planner.plans_built == built + 1


@pytest.mark.parametrize("mode", ["cold", "cached"])
def test_planner_serving(benchmark, mode):
    """Time one serving execution per mode; cold/cached side by side."""
    run, instrumented = _REGISTRY[_case(mode)]()
    timings = {}
    for probe_mode in ("cold", "cached"):
        probe_run, _ = _REGISTRY[_case(probe_mode)]()
        t0 = time.perf_counter()
        probe_run()
        timings[probe_mode] = time.perf_counter() - t0
    ops = instrumented()
    if mode == "cached":
        assert ops["plan_cache_hits"] == 1
        assert ops["plans_built"] == 1  # only the warmup planned
    rows_cold = _REGISTRY[_case("cold")]()[0]().rows
    rows_cached = _REGISTRY[_case("cached")]()[0]().rows
    assert rows_cold == rows_cached, "cold/cached row drift"
    once(benchmark, run)
    speedup = (
        timings["cold"] / timings["cached"] if timings["cached"] else 0.0
    )
    record(
        benchmark,
        "planner_serving",
        _case(mode),
        {
            "cold_ms": round(timings["cold"] * 1e3, 3),
            "cached_ms": round(timings["cached"] * 1e3, 3),
            "cached_speedup_x1000": int(speedup * 1000),
            "plans_built": ops["plans_built"],
            "plan_estimate_runs": ops["plan_estimate_runs"],
        },
    )
