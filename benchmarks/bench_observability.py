"""Observability overhead: instrumentation enabled vs disabled.

The obs subsystem's bargain (ISSUE 7): a session running with
``NULL_OBS`` pays a handful of no-op method calls and *nothing else* —
identical op counts, negligible wall-time — while an instrumented
session buys spans + metrics for a bounded premium.  Each case runs the
same workload three ways:

``off``
    ``Session(obs=None)`` / un-bound catalog — the default everyone
    gets; must behave exactly like the pre-observability code.
``metrics``
    ``Observability(trace=False)`` — registry live, tracer handing out
    ``NULL_SPAN`` (the ``TRACE OFF`` runtime state).
``trace``
    ``Observability(trace=True)`` — full span trees per execution.

Asserted every run (deterministic, machine-independent):

* op counts are identical across all three modes (instrumentation
  never touches ``OpCounters``), and
* the disabled-path op snapshots of the triangle + dynamic smoke
  workloads are byte-identical to ``baselines/smoke_ops.json`` —
  the same gate ``make check-ops`` enforces, scoped to the families
  this file times.

Gated in full runs only (timing asserts are machine-dependent; smoke
runs record but don't judge): metrics-only overhead stays under 5% of
the disabled-path wall time, min-over-interleaved-rounds.  The traced
ratio is recorded alongside for the EXPERIMENTS overhead table.
"""

import json
import os
import time

import pytest

from repro.dynamic import Catalog, build_catalog, triangle_stream
from repro.obs import Observability
from repro.serve import Session

from benchmarks._util import once, record, smoke_mode

_SMOKE = smoke_mode()
ROUNDS = 3 if _SMOKE else 7
#: Query executions per timed round — enough to amortize per-round
#: setup so the per-query instrumentation cost is what's measured.
QUERIES_PER_ROUND = 4 if _SMOKE else 30
OVERHEAD_CEILING = 1.05

_BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), "baselines", "smoke_ops.json"
)
#: The workload families this file times; their smoke op snapshots are
#: re-checked against the committed baseline below.
_FAMILIES = ("triangle/", "dynamic/")

TRIANGLE_TEXT = "Q(x, y, z) :- R(x, y), S(y, z), T(z, x)"


def _triangle_catalog():
    from repro.datasets.instances import triangle_with_output

    n = 24 if _SMOKE else 120
    r, s, t = triangle_with_output(n, max(2, n // 4), seed=5)
    cat = Catalog()
    cat.create_relation("R", ["A", "B"], list(r))
    cat.create_relation("S", ["B", "C"], list(s))
    cat.create_relation("T", ["C", "A"], list(t))
    return cat


def _dynamic_stream():
    params = (
        dict(n_nodes=10, n_edges=20, n_batches=3, batch_size=4)
        if _SMOKE
        else dict(n_nodes=40, n_edges=200, n_batches=6, batch_size=8)
    )
    return triangle_stream(insert_fraction=0.5, seed=12, **params)


def _obs_for(mode):
    if mode == "off":
        return None
    return Observability(trace=(mode == "trace"))


# ---------------------------------------------------------------------------
# workload runners: each returns (seconds, ops_snapshot) for one round
# ---------------------------------------------------------------------------


def _query_round(mode):
    session = Session(_triangle_catalog(), obs=_obs_for(mode))
    # Plan once outside the timer: the steady-state serving cost is
    # cache-hit execution, where per-query span/metric work dominates
    # the instrumentation side of the ledger.
    session.execute(TRIANGLE_TEXT)
    start = time.perf_counter()
    for _ in range(QUERIES_PER_ROUND):
        result = session.execute(TRIANGLE_TEXT)
    elapsed = time.perf_counter() - start
    if mode == "trace":
        session.obs.tracer.clear()
    return elapsed, dict(result.ops)


def _dynamic_round(mode):
    schemas, initial, batches = _dynamic_stream()
    obs = _obs_for(mode)
    start = time.perf_counter()
    catalog, view = build_catalog(schemas, initial)
    if obs is not None:
        catalog.bind_obs(obs)
    for batch in batches:
        catalog.apply_batch(batch)
    elapsed = time.perf_counter() - start
    return elapsed, view.counters.snapshot()


_WORKLOADS = {
    "triangle/query/cached": _query_round,
    "dynamic/triangle/mixed": _dynamic_round,
}


def _measure(runner):
    """Interleave off/metrics/trace rounds; min-over-rounds per mode.

    Interleaving means transient machine load hits all modes roughly
    equally (the perf_report.py discipline); minima are the
    noise-robust statistic for ratio gates on a shared box.
    """
    times = {"off": [], "metrics": [], "trace": []}
    ops = {}
    for _ in range(ROUNDS):
        for mode in ("off", "metrics", "trace"):
            elapsed, snapshot = runner(mode)
            times[mode].append(elapsed)
            ops[mode] = snapshot
    return {mode: min(vals) for mode, vals in times.items()}, ops


# ---------------------------------------------------------------------------
# benchmarks
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("case", sorted(_WORKLOADS))
def test_observability_overhead(benchmark, case):
    runner = _WORKLOADS[case]
    mins, ops = _measure(runner)

    # The deterministic acceptance gate: instrumentation never touches
    # the paper's op currency, in any mode.
    assert ops["metrics"] == ops["off"], (
        f"{case}: metrics-mode op drift vs disabled path"
    )
    assert ops["trace"] == ops["off"], (
        f"{case}: trace-mode op drift vs disabled path"
    )

    metrics_ratio = mins["metrics"] / mins["off"]
    trace_ratio = mins["trace"] / mins["off"]
    if not _SMOKE:
        assert metrics_ratio < OVERHEAD_CEILING, (
            f"{case}: metrics-only overhead {metrics_ratio:.3f}x exceeds "
            f"{OVERHEAD_CEILING}x (off={mins['off']:.6f}s, "
            f"metrics={mins['metrics']:.6f}s)"
        )

    once(benchmark, lambda: runner("off"))
    record(
        benchmark,
        "observability",
        case,
        {
            "off_min_s": round(mins["off"], 6),
            "metrics_min_s": round(mins["metrics"], 6),
            "trace_min_s": round(mins["trace"], 6),
            "metrics_overhead_x": round(metrics_ratio, 4),
            "trace_overhead_x": round(trace_ratio, 4),
            **{f"ops_{k}": v for k, v in sorted(ops["off"].items())},
        },
    )


def test_disabled_path_matches_smoke_baseline():
    """Triangle + dynamic smoke snapshots == committed baseline, bytes.

    The same parity ``make check-ops`` gates repo-wide, asserted here
    for the families this file times so a bench run alone catches an
    instrumentation change that leaks into the op counts.
    """
    import sys

    bench_dir = os.path.dirname(os.path.abspath(__file__))
    sys.path.insert(0, bench_dir)
    try:
        from _workloads import SMOKE_WORKLOADS
    finally:
        sys.path.pop(0)
    with open(_BASELINE_PATH) as handle:
        baseline = json.load(handle)
    checked = 0
    for name, factory in sorted(SMOKE_WORKLOADS.items()):
        if not name.startswith(_FAMILIES):
            continue
        assert name in baseline, f"{name} missing from smoke_ops baseline"
        _, instrumented = factory()
        current = instrumented()
        assert json.dumps(current, sort_keys=True) == json.dumps(
            baseline[name], sort_keys=True
        ), f"{name}: disabled-path op counts drifted from baseline"
        checked += 1
    assert checked >= 4, "expected triangle + dynamic smoke coverage"
