"""E11 — Proposition 2.6: a certificate of size <= r·N always exists.

Sweeps random instances of several query shapes, builds the constructive
certificate, and records |C_built| / (r·N); the bound must never be
exceeded, and the construction itself is benchmarked.
"""

import random

import pytest

from repro.certificates.builder import build_certificate, certificate_upper_bound
from repro.core.query import Query
from repro.storage.relation import Relation

from benchmarks._util import once, record

SHAPES = {
    "chain": [("R", ["A", "B"]), ("S", ["B", "C"]), ("T", ["C", "D"])],
    "star": [("R", ["A", "B"]), ("S", ["A", "C"]), ("T", ["A", "D"])],
    "triangle": [("R", ["A", "B"]), ("S", ["B", "C"]), ("T", ["A", "C"])],
}


def _random_query(shape, n, seed):
    rng = random.Random(seed)
    rels = []
    for name, attrs in SHAPES[shape]:
        rows = {
            tuple(rng.randint(0, 3 * n) for _ in attrs) for _ in range(n)
        }
        rels.append(Relation(name, attrs, rows))
    query = Query(rels)
    return query.with_gao(query.choose_gao()[0])


@pytest.mark.parametrize("shape", sorted(SHAPES))
@pytest.mark.parametrize("n", [50, 200])
def test_bound_holds(benchmark, shape, n):
    prepared = _random_query(shape, n, seed=n)
    cert = once(benchmark, lambda: build_certificate(prepared))
    bound = certificate_upper_bound(prepared)
    record(
        benchmark,
        "E11_certificate_bound",
        f"{shape}/n={n}",
        {
            "rN_bound": bound,
            "built_size": len(cert),
            "fraction_of_bound": round(len(cert) / bound, 3),
        },
    )
    assert len(cert) <= bound
    assert cert.satisfied_by(prepared)
