"""E6 — Proposition 5.3: Minesweeper pays Ω(m^w) on the Q_w family.

|C| = O(w·m), but the CDS must dismiss every length-w prefix one
backtrack at a time: measured backtracks are exactly m² + m for w = 2 and
grow ~m³ for w = 3 — the exponent-w shape of the lower bound (and the gap
to the |C|^{w+1} upper bound of Theorem 5.1).
"""

import math

import pytest

from repro.core.engine import join
from repro.datasets.instances import prop_5_3

from benchmarks._util import once, record


@pytest.mark.parametrize("m", [4, 8, 16])
def test_w2(benchmark, m):
    inst = prop_5_3(2, m)
    result = once(benchmark, lambda: join(inst.query, gao=inst.gao))
    assert result.rows == []
    record(
        benchmark,
        "E6_treewidth",
        f"w=2/m={m}",
        {
            "certificate": inst.certificate_size,
            "backtracks": result.counters.backtracks,
            "work": result.counters.total_work(),
        },
    )
    assert result.counters.backtracks == m * m + m


@pytest.mark.parametrize("m", [3, 5])
def test_w3(benchmark, m):
    """For w = 3 our shadow-meet backtracker shares some prefix
    dismissals (a meet pattern with a wildcard retires a whole slab), so
    the count sits between m² and m³; it must remain superlinear in
    |C| = O(w·m)."""
    inst = prop_5_3(3, m)
    result = once(benchmark, lambda: join(inst.query, gao=inst.gao))
    assert result.rows == []
    record(
        benchmark,
        "E6_treewidth",
        f"w=3/m={m}",
        {
            "certificate": inst.certificate_size,
            "backtracks": result.counters.backtracks,
        },
    )
    assert result.counters.backtracks >= m**2


def test_measured_exponent(benchmark):
    """log-log slope of backtracks vs m should sit near w = 2."""
    points = []
    for m in (4, 16):
        inst = prop_5_3(2, m)
        res = join(inst.query, gao=inst.gao)
        points.append((m, res.counters.backtracks))
    slope = math.log(points[1][1] / points[0][1]) / math.log(
        points[1][0] / points[0][0]
    )
    record(benchmark, "E6_treewidth", "exponent/w=2", {"slope": round(slope, 3)})
    once(benchmark, lambda: None)
    assert 1.7 < slope < 2.3
