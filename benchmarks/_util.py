"""Shared helpers for the benchmark suite.

Each benchmark measures wall-clock via pytest-benchmark *and* records the
paper-relevant operation counts (the evaluation currency of Section 5.2)
into ``benchmarks/results/summary.csv`` plus the benchmark's
``extra_info`` so the numbers survive into ``--benchmark-json`` output.
EXPERIMENTS.md is written from these rows.
"""

from __future__ import annotations

import csv
import os
from typing import Dict

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
SUMMARY_PATH = os.path.join(RESULTS_DIR, "summary.csv")
_FIELDS = ["experiment", "case", "metric", "value"]


def record(benchmark, experiment: str, case: str, metrics: Dict[str, float]) -> None:
    """Attach metrics to the benchmark and append them to the summary CSV."""
    for key, value in metrics.items():
        benchmark.extra_info[key] = value
    os.makedirs(RESULTS_DIR, exist_ok=True)
    fresh = not os.path.exists(SUMMARY_PATH)
    with open(SUMMARY_PATH, "a", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_FIELDS)
        if fresh:
            writer.writeheader()
        for key, value in metrics.items():
            writer.writerow(
                {
                    "experiment": experiment,
                    "case": case,
                    "metric": key,
                    "value": value,
                }
            )


def once(benchmark, func):
    """Run ``func`` exactly once under the benchmark timer."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
