"""Shared helpers for the benchmark suite.

Each benchmark measures wall-clock via pytest-benchmark *and* records the
paper-relevant operation counts (the evaluation currency of Section 5.2)
into ``benchmarks/results/summary.csv`` plus the benchmark's
``extra_info`` so the numbers survive into ``--benchmark-json`` output.
EXPERIMENTS.md is written from these rows.

The CSV is append-only and may be written by several pytest processes or
partially written by an interrupted run, so writers serialize on an
advisory file lock: the header is created atomically (temp file +
``os.replace``), each append is a single ``write`` of pre-joined rows,
and a malformed or missing header row in an existing file is repaired
rather than trusted (the lock keeps a repair from discarding a
concurrent append).
"""

from __future__ import annotations

import contextlib
import csv
import io
import os
import tempfile
from typing import Dict

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback, best effort
    fcntl = None

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
SUMMARY_PATH = os.path.join(RESULTS_DIR, "summary.csv")
_FIELDS = ["experiment", "case", "metric", "value"]
_HEADER_LINE = ",".join(_FIELDS)


@contextlib.contextmanager
def _summary_lock(path: str):
    """Advisory exclusive lock serializing header repair and appends."""
    if fcntl is None:
        yield
        return
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path + ".lock", "w") as handle:
        fcntl.flock(handle, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)


def _ensure_header(path: str = None) -> None:
    """Guarantee ``path`` exists and starts with the expected header row.

    * missing/empty file: created atomically with just the header, so a
      concurrent reader never observes a half-written header;
    * existing file with a malformed first line (e.g. a data row from an
      interrupted run that lost the header): rewritten atomically with
      the header prepended and every existing line preserved.
    """
    if path is None:
        path = SUMMARY_PATH  # resolved at call time (tests monkeypatch it)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    existing = ""
    try:
        with open(path, "r", newline="") as handle:
            existing = handle.read()
    except FileNotFoundError:
        pass
    if existing:
        first_line = existing.splitlines()[0].strip()
        if first_line == _HEADER_LINE:
            return
        body = existing if existing.endswith("\n") else existing + "\n"
        content = _HEADER_LINE + "\n" + body
    else:
        content = _HEADER_LINE + "\n"
    fd, tmp_path = tempfile.mkstemp(
        dir=os.path.dirname(path), prefix=".summary-", suffix=".csv"
    )
    try:
        with os.fdopen(fd, "w", newline="") as handle:
            handle.write(content)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def record(benchmark, experiment: str, case: str, metrics: Dict[str, float]) -> None:
    """Attach metrics to the benchmark and append them to the summary CSV."""
    for key, value in metrics.items():
        benchmark.extra_info[key] = value
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=_FIELDS)
    for key, value in metrics.items():
        writer.writerow(
            {
                "experiment": experiment,
                "case": case,
                "metric": key,
                "value": value,
            }
        )
    with _summary_lock(SUMMARY_PATH):
        _ensure_header()
        # One write call in append mode: rows land whole, and the lock
        # keeps a concurrent header repair from discarding them.
        with open(SUMMARY_PATH, "a", newline="") as handle:
            handle.write(buffer.getvalue())


def once(benchmark, func):
    """Run ``func`` exactly once under the benchmark timer."""
    return benchmark.pedantic(func, rounds=1, iterations=1)


#: Environment flag for smoke runs (``make bench-smoke`` /
#: ``python -m repro.cli bench --smoke``): every benchmark runs once with
#: tiny inputs so the perf plumbing is exercised without timing noise.
SMOKE_ENV = "REPRO_BENCH_SMOKE"


def smoke_mode() -> bool:
    return os.environ.get(SMOKE_ENV, "") not in ("", "0")


def sizes(normal, smoke):
    """Pick the benchmark's parameter list based on the smoke flag.

    Evaluated at collection time — export ``REPRO_BENCH_SMOKE=1`` before
    pytest starts (the CLI smoke runner does).
    """
    return smoke if smoke_mode() else normal
