"""CDS backends: pointer ConstraintTree vs arena, identical ops asserted.

For every shape in the ``cds/*`` workload family this runs both
backends on identical inputs, asserts **byte-identical rows and exact
operation-count equality** (the arena contract — the backend knob may
only change wall-clock), and records both timings so the speedup is a
diffable artifact in ``benchmarks/results/summary.csv`` and the
pytest-benchmark JSON folded into ``BENCH_*.json``.

The wall-clock ratio is machine-dependent and intentionally *not*
asserted here (the op-equality contract is the regression gate; CI runs
this file under ``--smoke`` on shared runners) — the committed
``BENCH_*.json`` records the measured ratios.
"""

import os
import time

import pytest

from benchmarks._util import once, record
import benchmarks._workloads as workloads


def _cds_cases():
    names = sorted(
        {
            name.rsplit("/", 1)[0]
            for name in workloads.WORKLOADS
            if name.startswith("cds/")
        }
    )
    return names


def _smoke_cases():
    return sorted(
        {
            name.rsplit("/", 1)[0]
            for name in workloads.SMOKE_WORKLOADS
            if name.startswith("cds/")
        }
    )


_SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
_REGISTRY = workloads.SMOKE_WORKLOADS if _SMOKE else workloads.WORKLOADS
CASES = _smoke_cases() if _SMOKE else _cds_cases()


@pytest.mark.parametrize("case", CASES)
def test_backends_identical_ops(benchmark, case):
    """Rows and op counts equal; both backends timed on the same input."""
    runs = {}
    ops = {}
    for backend in ("pointer", "arena"):
        run, instrumented = _REGISTRY[f"{case}/{backend}"]()
        t0 = time.perf_counter()
        run()
        runs[backend] = time.perf_counter() - t0
        ops[backend] = instrumented()
    assert ops["pointer"] == ops["arena"], (
        f"{case}: op-count drift between CDS backends"
    )
    # Rows: the dynamic case's run() returns the view; joins return a
    # JoinResult; triangle returns rows — compare their row content.
    rows = {}
    for backend in ("pointer", "arena"):
        run, _ = _REGISTRY[f"{case}/{backend}"]()
        out = run()
        if hasattr(out, "rows"):
            rows[backend] = (
                out.rows() if callable(out.rows) else list(out.rows)
            )
        else:
            rows[backend] = list(out)
    assert rows["pointer"] == rows["arena"], (
        f"{case}: row drift between CDS backends"
    )
    arena_run, _ = _REGISTRY[f"{case}/arena"]()
    once(benchmark, arena_run)
    speedup = runs["pointer"] / runs["arena"] if runs["arena"] else 0.0
    record(
        benchmark,
        "CDS_backends",
        case,
        {
            "pointer_ms": round(runs["pointer"] * 1e3, 3),
            "arena_ms": round(runs["arena"] * 1e3, 3),
            "speedup_x1000": int(speedup * 1000),
            "ops_identical": 1,
        },
    )
