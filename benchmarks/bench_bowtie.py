"""E9 — Appendix I: the bowtie query end to end (Algorithm 9).

Covers the two-block adversarial instance (Minesweeper's anticipatory
exploration keeps probes O(1) while S grows), a dense output workload, and
the specialized engine vs the generic chain engine on identical inputs.
"""

import random

import pytest

from repro.core.bowtie import bowtie_join
from repro.core.engine import join
from repro.core.query import Query
from repro.storage.relation import Relation
from repro.util.counters import OpCounters

from benchmarks._util import once, record, sizes


def _query(r, s, t):
    return Query(
        [
            Relation("R", ["X"], [(v,) for v in r]),
            Relation("S", ["X", "Y"], s),
            Relation("T", ["Y"], [(v,) for v in t]),
        ]
    )


@pytest.mark.parametrize("n", sizes([1_000, 100_000], [100]))
def test_hidden_certificate(benchmark, n):
    """Appendix I's two-block instance: |C| = 2, any S size."""
    r = [2]
    t = [n + 1]
    s = [(1, n + 1 + i) for i in range(1, n + 1)] + [
        (3, i) for i in range(1, n + 1)
    ]
    counters = OpCounters()
    rows = once(benchmark, lambda: bowtie_join(r, s, t, counters))
    assert rows == []
    record(
        benchmark,
        "E9_bowtie",
        f"two_block/n={n}",
        {"N": len(s) + 2, "probes": counters.probes},
    )
    assert counters.probes <= 6


@pytest.mark.parametrize("n", sizes([200, 2_000], [100]))
def test_dense_output(benchmark, n):
    rng = random.Random(0)
    r = sorted(rng.sample(range(n), n // 4))
    t = sorted(rng.sample(range(n), n // 4))
    s = sorted({(rng.randrange(n), rng.randrange(n)) for _ in range(4 * n)})
    counters = OpCounters()
    rows = once(benchmark, lambda: bowtie_join(r, s, t, counters))
    record(
        benchmark,
        "E9_bowtie",
        f"dense/n={n}",
        {"N": len(s) + len(r) + len(t), "Z": len(rows),
         "probes": counters.probes},
    )


@pytest.mark.parametrize("n", [500])
def test_specialized_matches_generic(benchmark, n):
    rng = random.Random(1)
    r = sorted(rng.sample(range(n), n // 5))
    t = sorted(rng.sample(range(n), n // 5))
    s = sorted({(rng.randrange(n), rng.randrange(n)) for _ in range(3 * n)})
    query = _query(r, s, t)
    generic = join(query, gao=["X", "Y"])
    rows = once(benchmark, lambda: bowtie_join(r, s, t))
    assert sorted(rows) == sorted(generic.rows)
    record(
        benchmark,
        "E9_bowtie",
        f"vs_generic/n={n}",
        {"generic_work": generic.counters.total_work(), "Z": len(rows)},
    )
