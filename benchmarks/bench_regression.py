"""Perf-regression harness: default-config wall-clock + op-count parity.

The cases mirror ``benchmarks/_workloads.py`` (triangle via the dyadic and
generic engines, adaptive set intersection) and are the rows that
``benchmarks/perf_report.py`` folds into the repo-root ``BENCH_<date>.json``
trajectory.  Every timed case also asserts the *semantics* the speedups
ride on:

* the flat (CSR) storage backend performs **exactly** the same FindGap /
  probe / constraint / interval operations as the pointer-trie backend —
  wall-clock may improve, the paper's Section-5.2 numbers may not move;
* the counting-free fast paths (``NullCounters`` / no-counters
  ``intersect_sorted``) produce byte-identical output to the instrumented
  paths.

Timings use several rounds (median) rather than the single-shot ``once``
of the experiment benchmarks, because these numbers are diffed across PRs.
"""

import pytest

from repro.core.engine import join
from repro.core.intersection import intersect_sorted
from repro.core.query import Query
from repro.core.triangle import triangle_join
from repro.datasets.instances import (
    intersection_blocks,
    intersection_interleaved,
    intersection_with_overlap,
    triangle_hard,
    triangle_with_output,
)
from repro.storage.relation import Relation
from repro.util.counters import NullCounters, OpCounters

from benchmarks._util import record, sizes

ROUNDS = sizes(5, 1)
DYADIC_HARD_SIZES = sizes([32, 48], [8])
DYADIC_PLANTED = sizes([(100, 25), (300, 75)], [(40, 10)])
MINESWEEPER_SIZES = sizes([16, 32], [8])
INTERSECTION_CASES = sizes(
    [
        ("interleaved/n=20000", lambda: intersection_interleaved(20_000)),
        (
            "overlap/k=100",
            lambda: intersection_with_overlap(50_000, 100, seed=4),
        ),
        ("blocks/n=100000", lambda: intersection_blocks(2, 100_000)),
    ],
    [
        ("interleaved/n=200", lambda: intersection_interleaved(200)),
        (
            "overlap/k=10",
            lambda: intersection_with_overlap(500, 10, seed=4),
        ),
        ("blocks/n=1000", lambda: intersection_blocks(2, 1_000)),
    ],
)


def _timed(benchmark, func):
    return benchmark.pedantic(func, rounds=ROUNDS, iterations=1)


def _triangle_query(r, s, t, backend):
    return Query(
        [
            Relation("R", ["A", "B"], r, backend=backend),
            Relation("S", ["B", "C"], s, backend=backend),
            Relation("T", ["A", "C"], t, backend=backend),
        ]
    )


def _key_ops(snapshot):
    return {
        k: snapshot.get(k, 0)
        for k in ("findgap", "probes", "constraints", "interval_ops")
    }


@pytest.mark.parametrize("n", DYADIC_HARD_SIZES)
def test_regression_triangle_dyadic_hard(benchmark, n):
    r, s, t, cert = triangle_hard(n)
    trie_counters = OpCounters()
    flat_counters = OpCounters()
    rows_trie = triangle_join(r, s, t, trie_counters, backend="trie")
    rows_flat = triangle_join(r, s, t, flat_counters, backend="flat")
    assert rows_trie == rows_flat
    assert trie_counters.snapshot() == flat_counters.snapshot()
    rows = _timed(
        benchmark, lambda: triangle_join(r, s, t, NullCounters())
    )
    assert rows == rows_trie
    record(
        benchmark,
        "REG_triangle",
        f"dyadic/hard/n={n}",
        {"certificate": cert, **_key_ops(flat_counters.snapshot())},
    )


@pytest.mark.parametrize("n,k", DYADIC_PLANTED)
def test_regression_triangle_dyadic_planted(benchmark, n, k):
    r, s, t = triangle_with_output(n, k, seed=5)
    trie_counters = OpCounters()
    flat_counters = OpCounters()
    rows_trie = triangle_join(r, s, t, trie_counters, backend="trie")
    rows_flat = triangle_join(r, s, t, flat_counters, backend="flat")
    assert rows_trie == rows_flat
    assert trie_counters.snapshot() == flat_counters.snapshot()
    rows = _timed(
        benchmark, lambda: triangle_join(r, s, t, NullCounters())
    )
    assert rows == rows_trie
    record(
        benchmark,
        "REG_triangle",
        f"dyadic/planted/n={n}",
        {"Z": len(rows), **_key_ops(flat_counters.snapshot())},
    )


@pytest.mark.parametrize("n", MINESWEEPER_SIZES)
def test_regression_triangle_minesweeper(benchmark, n):
    r, s, t, cert = triangle_hard(n)
    res_trie = join(
        _triangle_query(r, s, t, "trie"), gao=["A", "B", "C"],
        strategy="general",
    )
    res_flat = join(
        _triangle_query(r, s, t, "flat"), gao=["A", "B", "C"],
        strategy="general",
    )
    assert res_trie.rows == res_flat.rows
    assert res_trie.stats() == res_flat.stats()
    result = _timed(
        benchmark,
        lambda: join(
            _triangle_query(r, s, t, "flat"),
            gao=["A", "B", "C"],
            strategy="general",
            counters=NullCounters(),
        ),
    )
    assert result.rows == res_trie.rows
    record(
        benchmark,
        "REG_triangle",
        f"minesweeper/hard/n={n}",
        {"certificate": cert, **_key_ops(res_flat.stats())},
    )


@pytest.mark.parametrize("case,sets_factory", INTERSECTION_CASES)
def test_regression_intersection(benchmark, case, sets_factory):
    sets = sets_factory()
    counters = OpCounters()
    instrumented_out = intersect_sorted(sets, counters)
    fast_out = _timed(benchmark, lambda: intersect_sorted(sets))
    assert fast_out == instrumented_out
    record(
        benchmark,
        "REG_intersection",
        case,
        {
            "N": sum(len(s) for s in sets),
            "Z": len(fast_out),
            **_key_ops(counters.snapshot()),
        },
    )
