"""Write the repo-root ``BENCH_<date>.json`` perf-trajectory report.

The report has two sections:

``workloads``
    Median wall-clock + op counts for every case in
    ``benchmarks/_workloads.py``, measured by running the *same driver
    file* against this checkout and (optionally) against a baseline —
    either an older git ref (``--baseline-ref``, executed from a
    temporary ``git worktree`` so the identical workload definitions run
    on the old code) or a previously committed report
    (``--baseline-json``, the usual PR-to-PR diff).  Speedup =
    baseline_median / current_median.

``pytest_benchmarks``
    The folded output of a ``pytest --benchmark-json`` run over the
    benchmark suite (default: ``bench_regression.py``), with each case's
    op-count ``extra_info`` merged next to its timing stats, so paper
    operation counts and wall-clock travel in one diffable artifact.

Typical use::

    # first report of a PR series, baselined against the seed commit
    PYTHONPATH=src python benchmarks/perf_report.py --baseline-ref <seed-sha>

    # subsequent PRs: diff against the last committed report
    PYTHONPATH=src python benchmarks/perf_report.py \
        --baseline-json BENCH_2026-07-28.json
"""

from __future__ import annotations

import argparse
import datetime
import json
import math
import os
import subprocess
import sys
import tempfile
from typing import Dict, Optional, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DRIVER = os.path.join(REPO_ROOT, "benchmarks", "_workloads.py")
DEFAULT_BENCH_FILES = [
    "benchmarks/bench_regression.py",
    "benchmarks/bench_dynamic.py",
    "benchmarks/bench_parallel.py",
    "benchmarks/bench_cds_backends.py",
]


def _run_driver(src_dir: str, repeat: int) -> Dict[str, dict]:
    """Execute the workload driver against ``src_dir``'s repro package."""
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir
    out = subprocess.run(
        [sys.executable, DRIVER, "--json", "--repeat", str(repeat)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
        cwd=REPO_ROOT,
    )
    return json.loads(out.stdout)


def _merge_rounds(rounds) -> Dict[str, dict]:
    """Fold per-round driver outputs: min of mins, median of medians."""
    import statistics

    merged: Dict[str, dict] = {}
    for result in rounds:
        for name, row in result.items():
            slot = merged.setdefault(
                name, {"medians": [], "mins": [], "ops": row.get("ops", {})}
            )
            slot["medians"].append(row["median_s"])
            slot["mins"].append(row["min_s"])
    return {
        name: {
            "median_s": statistics.median(slot["medians"]),
            "min_s": min(slot["mins"]),
            "rounds": len(slot["mins"]),
            "ops": slot["ops"],
        }
        for name, slot in merged.items()
    }


def _measure_interleaved(
    src_a: str, src_b: str, rounds: int
) -> "Tuple[Dict[str, dict], Dict[str, dict]]":
    """Measure two checkouts in alternating rounds (A B A B ...).

    Interleaving means transient machine load hits both sides roughly
    equally; speedups are computed from per-case minima, which are far
    more stable than single-block medians on a shared box.
    """
    rounds_a, rounds_b = [], []
    for _ in range(rounds):
        rounds_a.append(_run_driver(src_a, 1))
        rounds_b.append(_run_driver(src_b, 1))
    return _merge_rounds(rounds_a), _merge_rounds(rounds_b)


def _with_ref_worktree(ref: str, fn):
    """Run ``fn(worktree_src_dir)`` against a temp checkout of ``ref``."""
    tmp = tempfile.mkdtemp(prefix="bench-baseline-")
    subprocess.run(
        ["git", "worktree", "add", "--detach", tmp, ref],
        cwd=REPO_ROOT,
        check=True,
        capture_output=True,
    )
    try:
        return fn(os.path.join(tmp, "src"))
    finally:
        subprocess.run(
            ["git", "worktree", "remove", "--force", tmp],
            cwd=REPO_ROOT,
            capture_output=True,
        )


def _baseline_from_json(path: str) -> Dict[str, dict]:
    with open(path) as handle:
        report = json.load(handle)
    return {
        name: row["current"] for name, row in report["workloads"].items()
    }


def _run_pytest_benchmarks(bench_files) -> Dict[str, dict]:
    """Run the suite with --benchmark-json and fold extra_info per case."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        json_path = handle.name
    try:
        env = dict(os.environ)
        src = os.path.join(REPO_ROOT, "src")
        env["PYTHONPATH"] = (
            src + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else src
        )
        subprocess.run(
            [
                sys.executable, "-m", "pytest", "-q",
                *bench_files,
                f"--benchmark-json={json_path}",
            ],
            cwd=REPO_ROOT,
            env=env,
            check=True,
            capture_output=True,
            text=True,
        )
        with open(json_path) as handle:
            raw = json.load(handle)
    finally:
        os.unlink(json_path)
    cases: Dict[str, dict] = {}
    for bench in raw.get("benchmarks", []):
        stats = bench["stats"]
        cases[bench["name"]] = {
            "median_s": stats["median"],
            "min_s": stats["min"],
            "rounds": stats["rounds"],
            "ops": bench.get("extra_info", {}),
        }
    return cases


def _metrics_section(current: Dict[str, dict]) -> dict:
    """Fold the workload rows through the obs registry (ISSUE 7).

    Every case's op tallies feed one ``bench_workload_ops`` histogram
    family (labeled by op counter) and its median wall time feeds
    ``bench_workload_seconds``, so each BENCH report carries the same
    op-histogram summaries ``repro serve --metrics-dir`` exports — one
    schema across serving and benchmarking.
    """
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    try:
        from repro.obs import DEFAULT_OP_BUCKETS, MetricsRegistry
    finally:
        sys.path.pop(0)
    registry = MetricsRegistry(namespace="bench")
    for row in current.values():
        registry.histogram(
            "workload_seconds",
            "Median wall time per workload case.",
        ).observe(row["median_s"])
        for op, value in sorted((row.get("ops") or {}).items()):
            registry.histogram(
                "workload_ops",
                "Per-workload-case op tallies, by counter.",
                buckets=DEFAULT_OP_BUCKETS,
                labels={"op": op},
            ).observe(value)
    return registry.snapshot()


def build_report(
    baseline: Optional[Dict[str, dict]],
    baseline_source: Optional[str],
    current: Dict[str, dict],
    bench_files,
) -> dict:
    workloads: Dict[str, dict] = {}
    for name, row in sorted(current.items()):
        entry = {"current": row}
        if baseline and name in baseline:
            base = baseline[name]
            entry["baseline"] = base
            if row["min_s"] > 0:
                # min-over-rounds is the noise-robust statistic on a
                # shared machine; the medians are recorded alongside.
                entry["speedup"] = round(base["min_s"] / row["min_s"], 3)
                entry["speedup_median"] = round(
                    base["median_s"] / row["median_s"], 3
                )
            base_ops = base.get("ops") or {}
            cur_ops = row.get("ops") or {}
            shared = set(base_ops) & set(cur_ops)
            entry["ops_unchanged"] = all(
                base_ops[k] == cur_ops[k] for k in shared
            )
        workloads[name] = entry
    report = {
        "schema": "repro-bench/1",
        "date": datetime.date.today().isoformat(),
        "baseline_source": baseline_source,
        "workloads": workloads,
        "metrics": _metrics_section(current),
        "pytest_benchmarks": _run_pytest_benchmarks(bench_files),
    }
    families: Dict[str, list] = {}
    for name, entry in workloads.items():
        if "speedup" in entry:
            families.setdefault(name.split("/", 1)[0], []).append(
                entry["speedup"]
            )
    if families:
        report["family_speedups"] = {
            family: round(
                math.exp(sum(math.log(s) for s in speeds) / len(speeds)), 3
            )
            for family, speeds in sorted(families.items())
        }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline-ref", help="git ref to baseline against")
    parser.add_argument(
        "--baseline-json", help="previous BENCH_*.json to baseline against"
    )
    parser.add_argument("--repeat", type=int, default=5)
    parser.add_argument(
        "--bench-files",
        nargs="*",
        default=DEFAULT_BENCH_FILES,
        help="pytest benchmark files to fold into the report",
    )
    parser.add_argument(
        "--out",
        help="output path (default BENCH_<today>.json at the repo root)",
    )
    args = parser.parse_args(argv)
    if args.baseline_ref and args.baseline_json:
        parser.error("pick one of --baseline-ref / --baseline-json")
    baseline = None
    source = None
    current_src = os.path.join(REPO_ROOT, "src")
    if args.baseline_ref:
        baseline, current = _with_ref_worktree(
            args.baseline_ref,
            lambda base_src: _measure_interleaved(
                base_src, current_src, args.repeat
            ),
        )
        source = f"git:{args.baseline_ref}"
    else:
        current = _run_driver(current_src, args.repeat)
        if args.baseline_json:
            baseline = _baseline_from_json(args.baseline_json)
            source = os.path.basename(args.baseline_json)
    report = build_report(baseline, source, current, args.bench_files)
    out_path = args.out or os.path.join(
        REPO_ROOT, f"BENCH_{report['date']}.json"
    )
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for name, row in report["workloads"].items():
        speed = row.get("speedup")
        ops_ok = row.get("ops_unchanged")
        extra = ""
        if speed is not None:
            extra = f"  {speed:5.2f}x vs baseline (ops_unchanged={ops_ok})"
        print(f"{name:40s} {row['current']['median_s'] * 1e3:9.2f} ms{extra}")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
