"""Streaming-update benchmark: live views vs per-batch full recompute.

The dynamic subsystem's claim (ISSUE 2): maintaining a materialized join
via ``LiveJoin``'s Minesweeper-evaluated delta terms costs operations
proportional to the *delta* certificate, so per batch it performs far
fewer FindGap / probe operations than recomputing the join from
scratch.  Each case replays a deterministic update stream
(insert-heavy / mixed / delete-heavy triangle churn, plus a mixed k-way
set intersection), times the full incremental replay, asserts
maintained == recomputed rows after every batch, and records both op
totals; the mixed cases additionally assert the op-count savings at
these fixed sizes (the acceptance criterion; scaled sizes show the
margin widening — see tests/test_incremental.py for the 2x floor).
"""

import pytest

from repro.dynamic import (
    build_catalog,
    intersection_stream,
    replay_with_recompute,
    triangle_stream,
)

from benchmarks._util import record, sizes

ROUNDS = sizes(5, 1)

_FULL = dict(n_nodes=40, n_edges=200, n_batches=6, batch_size=8)
_TINY = dict(n_nodes=10, n_edges=20, n_batches=3, batch_size=4)
CASES = sizes(
    [
        ("triangle/insert-heavy", triangle_stream,
         dict(_FULL, insert_fraction=0.9, seed=11)),
        ("triangle/mixed", triangle_stream,
         dict(_FULL, insert_fraction=0.5, seed=12)),
        ("triangle/delete-heavy", triangle_stream,
         dict(_FULL, insert_fraction=0.1, seed=13)),
        ("intersection/mixed", intersection_stream,
         dict(k=3, domain=5000, n_values=600, n_batches=6, batch_size=8,
              insert_fraction=0.5, seed=14)),
    ],
    [
        ("triangle/insert-heavy", triangle_stream,
         dict(_TINY, insert_fraction=0.9, seed=11)),
        ("triangle/mixed", triangle_stream,
         dict(_TINY, insert_fraction=0.5, seed=12)),
        ("triangle/delete-heavy", triangle_stream,
         dict(_TINY, insert_fraction=0.1, seed=13)),
        ("intersection/mixed", intersection_stream,
         dict(k=3, domain=200, n_values=40, n_batches=3, batch_size=4,
              insert_fraction=0.5, seed=14)),
    ],
)


def _replay(schemas, initial, batches):
    """Build a catalog and replay the whole stream incrementally."""
    catalog, view = build_catalog(schemas, initial)
    for batch in batches:
        catalog.apply_batch(batch)
    return catalog, view


@pytest.mark.parametrize("case,stream,params", CASES)
def test_dynamic_stream(benchmark, case, stream, params):
    schemas, initial, batches = stream(**params)
    _, view, inc, rec = replay_with_recompute(schemas, initial, batches)
    # the acceptance assertion: incremental maintenance is measurably
    # cheaper than recomputing every batch (2x floor; observed ~4x at
    # the full sizes for the mixed triangle case)
    assert inc["findgap"] < rec["findgap"]
    assert inc["probes"] < rec["probes"]
    benchmark.pedantic(
        _replay, args=(schemas, initial, batches), rounds=ROUNDS,
        iterations=1,
    )
    n_updates = sum(len(b) for b in batches)
    record(
        benchmark,
        "DYN_stream",
        case,
        {
            "batches": len(batches),
            "updates": n_updates,
            "rows": len(view),
            "inc_findgap": inc["findgap"],
            "inc_probes": inc["probes"],
            "rec_findgap": rec["findgap"],
            "rec_probes": rec["probes"],
            "findgap_savings": round(
                rec["findgap"] / inc["findgap"], 2
            ) if inc["findgap"] else 0.0,
        },
    )
