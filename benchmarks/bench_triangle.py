"""E7 — Theorem 5.4: dyadic-tree CDS vs the generic CDS on triangles.

On the adversarial parity family (|C| = Θ(n²)) the generic shadow-chain
CDS rediscovers the C-interleave per (a, b) pair (measured exponent vs |C|
≈ 1.3+), while the dyadic CDS shares coverage across b-blocks and stays
near-linear in |C| (exponent ≈ 1.1).  LFTJ is included as the worst-case
optimal reference; a sparse planted-triangle workload covers the Z > 0
path.
"""

import math

import pytest

from repro.baselines.leapfrog import leapfrog_triejoin
from repro.core.engine import join
from repro.core.query import Query
from repro.core.triangle import triangle_join
from repro.datasets.instances import triangle_hard, triangle_with_output
from repro.storage.relation import Relation
from repro.util.counters import OpCounters

from benchmarks._util import once, record, sizes, smoke_mode

SIZES = sizes([8, 16, 32], [6])
PLANTED_SIZES = sizes([100, 300], [24])
EXPONENT_POINTS = sizes((12, 48), (8, 16))


def _query(r, s, t):
    return Query(
        [
            Relation("R", ["A", "B"], r),
            Relation("S", ["B", "C"], s),
            Relation("T", ["A", "C"], t),
        ]
    )


@pytest.mark.parametrize("n", SIZES)
def test_hard_generic_cds(benchmark, n):
    r, s, t, cert = triangle_hard(n)
    query = _query(r, s, t)
    result = once(
        benchmark, lambda: join(query, gao=["A", "B", "C"], strategy="general")
    )
    assert result.rows == []
    record(
        benchmark,
        "E7_triangle",
        f"generic/n={n}",
        {"certificate": cert, "work": result.counters.total_work()},
    )


@pytest.mark.parametrize("n", SIZES)
def test_hard_dyadic_cds(benchmark, n):
    r, s, t, cert = triangle_hard(n)
    counters = OpCounters()
    rows = once(benchmark, lambda: triangle_join(r, s, t, counters))
    assert rows == []
    record(
        benchmark,
        "E7_triangle",
        f"dyadic/n={n}",
        {"certificate": cert, "work": counters.total_work()},
    )


@pytest.mark.parametrize("n", SIZES)
def test_hard_leapfrog(benchmark, n):
    r, s, t, cert = triangle_hard(n)
    prepared = _query(r, s, t).with_gao(["A", "B", "C"])
    counters = OpCounters()
    rows = once(benchmark, lambda: leapfrog_triejoin(prepared, counters))
    assert rows == []
    record(
        benchmark,
        "E7_triangle",
        f"leapfrog/n={n}",
        {"certificate": cert, "work": counters.total_work()},
    )


def _work_exponent(engine):
    points = []
    for n in EXPONENT_POINTS:
        r, s, t, cert = triangle_hard(n)
        points.append((cert, engine(r, s, t)))
    return math.log(points[1][1] / points[0][1]) / math.log(
        points[1][0] / points[0][0]
    )


def test_dyadic_beats_generic_exponent(benchmark):
    """The Theorem 5.4 separation, as measured work exponents vs |C|."""

    def generic(r, s, t):
        return join(
            _query(r, s, t), gao=["A", "B", "C"], strategy="general"
        ).counters.total_work()

    def dyadic(r, s, t):
        counters = OpCounters()
        triangle_join(r, s, t, counters)
        return counters.total_work()

    exp_generic = _work_exponent(generic)
    exp_dyadic = _work_exponent(dyadic)
    record(
        benchmark,
        "E7_triangle",
        "exponents",
        {
            "generic_exponent": round(exp_generic, 3),
            "dyadic_exponent": round(exp_dyadic, 3),
        },
    )
    once(benchmark, lambda: None)
    if not smoke_mode():  # tiny instances are too small to separate
        assert exp_dyadic < exp_generic - 0.1


@pytest.mark.parametrize("n", PLANTED_SIZES)
def test_planted_triangles(benchmark, n):
    r, s, t = triangle_with_output(n, n // 4, seed=5)
    counters = OpCounters()
    rows = once(benchmark, lambda: triangle_join(r, s, t, counters))
    record(
        benchmark,
        "E7_triangle",
        f"planted/n={n}",
        {"Z": len(rows), "work": counters.total_work()},
    )
    assert len(rows) >= n // 4
