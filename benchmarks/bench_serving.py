"""Closed-loop serving throughput over the multi-tenant HTTP front door.

Launches ``serve_http`` in-process on an ephemeral port and drives it
with closed-loop client threads (each thread issues its next query the
moment the previous response lands):

* **rows** — every HTTP response must be byte-identical to executing
  the same query on a direct in-process :class:`~repro.serve.Session`
  over the same data: the network layer (pooling, tenant locks, the
  shared plan cache) must not perturb results;
* **throughput** — queries/second at 1/2/4/8 client threads, against
  one tenant and spread across N tenants, recorded into
  ``summary.csv`` (EXPERIMENTS.md's serving table reads these rows);
* **baseline hygiene** — the committed op-count baseline
  ``benchmarks/baselines/smoke_ops.json`` must be untouched after the
  run: serving is a new surface, not a change to engine work.
"""

import json
import os
import threading
import time

from repro.dynamic import Catalog
from repro.net import Client, TenantRegistry, TenantSpec, serve_http
from repro.serve import Session

from benchmarks._util import record, sizes

#: Closed-loop client thread counts (the ISSUE's 1/2/4/8 ladder).
THREAD_COUNTS = sizes([1, 2, 4, 8], [1, 2])
#: Queries each client thread issues per measured loop.
REQUESTS_PER_THREAD = sizes(40, 4)
#: Single-tenant vs. spread-across-N-tenants contention.
TENANT_COUNTS = sizes([1, 4], [1, 2])

PAIRS = "Q(x, z) :- E(x, y), E(y, z)"
N_NODES = sizes(60, 12)

BASELINE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "baselines",
    "smoke_ops.json",
)


def _edges(tenant_index, nodes=None):
    """A deterministic ring-with-chords graph, offset per tenant so
    tenants hold (and must keep returning) different rows."""
    n = nodes if nodes is not None else N_NODES
    base = tenant_index * 1000
    out = []
    for i in range(n):
        out.append((base + i, base + (i + 1) % n))
        out.append((base + i, base + (i * 7 + 3) % n))
    return sorted(set(out))


def _direct_rows(edges):
    catalog = Catalog()
    catalog.create_relation("E", ["A", "B"], list(edges))
    session = Session(catalog)
    try:
        return session.execute(PAIRS).rows
    finally:
        session.close()


def _closed_loop(url, tenant_ids, threads, requests, reference):
    """``threads`` closed-loop clients, round-robin over tenants;
    returns (elapsed_s, error list)."""
    errors = []
    barrier = threading.Barrier(threads + 1)

    def worker(index):
        client = Client(url)
        tenant = tenant_ids[index % len(tenant_ids)]
        barrier.wait()
        for _ in range(requests):
            rows = client.rows(PAIRS, tenant=tenant)
            if rows != reference[tenant]:
                errors.append(
                    f"{tenant}: {len(rows)} rows != reference "
                    f"{len(reference[tenant])}"
                )
                return

    pool = [
        threading.Thread(target=worker, args=(i,)) for i in range(threads)
    ]
    for t in pool:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in pool:
        t.join()
    return time.perf_counter() - t0, errors


def test_serving_throughput(benchmark):
    with open(BASELINE, "rb") as handle:
        baseline_before = handle.read()

    tenant_count = max(TENANT_COUNTS)
    registry = TenantRegistry(
        [TenantSpec(f"t{i}") for i in range(tenant_count)]
    )
    for index in range(tenant_count):
        tenant = registry.get(f"t{index}")
        tenant.catalog.create_relation(
            "E", ["A", "B"], _edges(index)
        )
    server = serve_http(registry)
    serve_thread = threading.Thread(
        target=server.serve_forever, daemon=True
    )
    serve_thread.start()

    try:
        # --- parity gate: HTTP rows == direct Session rows, bytewise ---
        client = Client(server.url)
        reference = {}
        for index in range(tenant_count):
            want = _direct_rows(_edges(index))
            got = client.rows(PAIRS, tenant=f"t{index}")
            assert got == want, (
                f"t{index}: HTTP rows diverge from direct execution"
            )
            reference[f"t{index}"] = want

        # --- throughput ladder: thread counts x tenant spread ---
        metrics = {"rows_per_query": len(reference["t0"])}
        for tenants in TENANT_COUNTS:
            ids = [f"t{i}" for i in range(tenants)]
            for threads in THREAD_COUNTS:
                elapsed, errors = _closed_loop(
                    server.url, ids, threads, REQUESTS_PER_THREAD,
                    reference,
                )
                assert not errors, errors[:3]
                total = threads * REQUESTS_PER_THREAD
                metrics[f"qps_threads={threads}_tenants={tenants}"] = (
                    round(total / elapsed, 1) if elapsed > 0 else 0.0
                )

        benchmark.pedantic(
            lambda: _closed_loop(
                server.url,
                ["t0"],
                THREAD_COUNTS[-1],
                REQUESTS_PER_THREAD,
                reference,
            ),
            rounds=1,
            iterations=1,
        )
        case = (
            f"pairs/n={N_NODES}/threads={THREAD_COUNTS[-1]}"
            f"/tenants={max(TENANT_COUNTS)}"
        )
        record(benchmark, "SERVING_throughput", case, metrics)
    finally:
        server.shutdown()
        server.server_close()
        registry.close()
        serve_thread.join(timeout=5.0)

    with open(BASELINE, "rb") as handle:
        assert handle.read() == baseline_before, (
            "serving bench must not touch smoke_ops.json"
        )
    # The recorded plan-cache counters come from the shared registry
    # cache — sanity: repeated traffic planned each query text once
    # per tenant.
    stats = registry.plan_cache.stats()
    assert stats["hits"] > 0
    json.dumps(stats)  # summary-safe (plain ints)
