"""E8 — Appendix H: adaptive set intersection (Theorem H.4).

Three regimes: disjoint blocks (|C| = O(m), Minesweeper's work flat while
inputs grow 100x), perfect interleave (|C| = Θ(N), everyone linear), and
sparse planted overlap (work ∝ overlap, not N).  The merge baseline is
Θ(N) in every regime.
"""

import pytest

from repro.core.intersection import (
    intersect_sorted,
    intersection_certificate_size,
    merge_intersection,
)
from repro.datasets.instances import (
    intersection_blocks,
    intersection_interleaved,
    intersection_with_overlap,
)
from repro.util.counters import OpCounters

from benchmarks._util import once, record, sizes

BLOCK_SIZES = sizes([1_000, 100_000], [200])
INTERLEAVED_SIZES = sizes([2_000, 20_000], [200])
OVERLAPS = sizes([10, 100], [5])
OVERLAP_SET_SIZE = sizes(50_000, 500)


@pytest.mark.parametrize("block", BLOCK_SIZES)
def test_disjoint_blocks_minesweeper(benchmark, block):
    sets = intersection_blocks(2, block)
    counters = OpCounters()
    out = once(benchmark, lambda: intersect_sorted(sets, counters))
    assert out == []
    record(
        benchmark,
        "E8_intersection",
        f"blocks/minesweeper/n={block}",
        {"N": 2 * block, "probes": counters.probes},
    )
    assert counters.probes <= 4


@pytest.mark.parametrize("block", BLOCK_SIZES)
def test_disjoint_blocks_merge(benchmark, block):
    sets = intersection_blocks(2, block)
    counters = OpCounters()
    once(benchmark, lambda: merge_intersection(sets, counters))
    record(
        benchmark,
        "E8_intersection",
        f"blocks/merge/n={block}",
        {"N": 2 * block, "comparisons": counters.comparisons},
    )
    assert counters.comparisons >= block / 2


@pytest.mark.parametrize("n", INTERLEAVED_SIZES)
def test_interleaved(benchmark, n):
    sets = intersection_interleaved(n)
    counters = OpCounters()
    out = once(benchmark, lambda: intersect_sorted(sets, counters))
    assert out == []
    cert = intersection_certificate_size(sets)
    record(
        benchmark,
        "E8_intersection",
        f"interleaved/n={n}",
        {"N": 2 * n, "certificate": cert, "probes": counters.probes},
    )
    # Certificate is Θ(N) here: no algorithm can shortcut; probes ~ n.
    assert counters.probes >= n / 2


@pytest.mark.parametrize("overlap", OVERLAPS)
def test_sparse_overlap(benchmark, overlap):
    sets = intersection_with_overlap(OVERLAP_SET_SIZE, overlap, seed=4)
    counters = OpCounters()
    out = once(benchmark, lambda: intersect_sorted(sets, counters))
    assert len(out) == overlap
    record(
        benchmark,
        "E8_intersection",
        f"overlap/k={overlap}",
        {
            "N": sum(len(s) for s in sets),
            "Z": overlap,
            "probes": counters.probes,
        },
    )
    assert counters.probes <= 6 * overlap + 10
