"""Fail CI when a ``--metrics-dir`` dump violates the obs schema.

``make trace-smoke`` replays the serving demo under ``--trace
--metrics-dir`` and points this checker at the artifacts.  Four files
are validated:

``spans.jsonl``
    Must round-trip through :func:`repro.obs.load_jsonl` (which
    enforces the trace invariants: valid JSON per line, required keys,
    non-negative durations, parents exported before children, no
    duplicate span ids) and must cover the query-lifecycle stages the
    smoke exercises (``--require``, repeatable).
``metrics.prom``
    Prometheus text-exposition 0.0.4 grammar: every sample preceded by
    ``# HELP`` + ``# TYPE`` for its family, histogram families carry
    cumulative non-decreasing ``_bucket{le=...}`` series ending at
    ``+Inf`` with matching ``_count``, plus ``_sum``; and the unified
    stats tree is present as the ``repro_stat`` gauge family.
``metrics.json``
    Parses, with ``metrics`` (registry snapshot) and ``stats`` (the
    unified tree — ``session`` / ``planner`` / ``plan_cache`` /
    ``catalog`` subtrees) top-level keys.
``slow_queries.jsonl``
    Every line parses as a JSON object with ``text`` and ``seconds``
    (the file may be empty).
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

#: ``name{labels} value [timestamp]`` — one exposition sample.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)(?:\s+\d+)?$"
)
_LE_RE = re.compile(r'le="([^"]+)"')

DEFAULT_REQUIRED_SPANS = ("query", "plan", "execute", "apply_batch")


class CheckFailure(Exception):
    pass


def _fail(path: str, message: str) -> None:
    raise CheckFailure(f"{os.path.basename(path)}: {message}")


def check_spans(path: str, required) -> int:
    sys.path.insert(
        0,
        os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "src",
        ),
    )
    try:
        from repro.obs import load_jsonl
    finally:
        sys.path.pop(0)
    with open(path) as handle:
        try:
            roots = load_jsonl(handle)
        except ValueError as exc:
            _fail(path, f"invariant violation: {exc}")
    names = set()

    def walk(span):
        names.add(span.name)
        for child in span.children:
            walk(child)

    for root in roots:
        walk(root)
    missing = [name for name in required if name not in names]
    if missing:
        _fail(
            path,
            f"missing required span stage(s) {missing}; saw {sorted(names)}",
        )
    if not roots:
        _fail(path, "no root spans exported")
    return len(roots)


def _family(sample_name: str) -> str:
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            return sample_name[: -len(suffix)]
    return sample_name


def check_prometheus(path: str) -> int:
    helped, typed = set(), {}
    buckets = {}  # family|labels-minus-le -> [(le, value)]
    sums, counts = {}, {}
    families_seen = set()
    with open(path) as handle:
        for lineno, raw in enumerate(handle, 1):
            line = raw.rstrip("\n")
            if not line.strip():
                continue
            if line.startswith("# HELP "):
                helped.add(line.split()[2])
                continue
            if line.startswith("# TYPE "):
                parts = line.split()
                typed[parts[2]] = parts[3]
                continue
            if line.startswith("#"):
                continue
            match = _SAMPLE_RE.match(line)
            if not match:
                _fail(path, f"line {lineno}: unparseable sample {line!r}")
            name = match.group("name")
            family = _family(name)
            families_seen.add(family)
            if family not in helped or family not in typed:
                _fail(
                    path,
                    f"line {lineno}: sample {name!r} before "
                    f"# HELP/# TYPE for family {family!r}",
                )
            try:
                value = float(match.group("value"))
            except ValueError:
                _fail(path, f"line {lineno}: non-numeric value in {line!r}")
            labels = match.group("labels") or ""
            if name.endswith("_bucket"):
                le_match = _LE_RE.search(labels)
                if not le_match:
                    _fail(path, f"line {lineno}: _bucket without le label")
                le_raw = le_match.group(1)
                le = float("inf") if le_raw == "+Inf" else float(le_raw)
                key = (family, _LE_RE.sub("", labels))
                buckets.setdefault(key, []).append((le, value))
            elif name.endswith("_sum"):
                sums[(family, labels)] = value
            elif name.endswith("_count"):
                counts[(family, labels)] = value
    for (family, labels), series in sorted(buckets.items()):
        if typed.get(family) != "histogram":
            _fail(path, f"{family}: _bucket series but TYPE != histogram")
        les = [le for le, _ in series]
        values = [v for _, v in series]
        if les[-1] != float("inf"):
            _fail(path, f"{family}{{{labels}}}: bucket series missing +Inf")
        if any(late < early for early, late in zip(values, values[1:])):
            _fail(
                path,
                f"{family}{{{labels}}}: cumulative buckets decrease",
            )
        if (family, labels) not in sums:
            _fail(path, f"{family}{{{labels}}}: histogram missing _sum")
        count = counts.get((family, labels))
        if count is None:
            _fail(path, f"{family}{{{labels}}}: histogram missing _count")
        if count != values[-1]:
            _fail(
                path,
                f"{family}{{{labels}}}: _count {count} != +Inf bucket "
                f"{values[-1]}",
            )
    if "repro_stat" not in families_seen:
        _fail(path, "unified stats family repro_stat absent")
    return len(families_seen)


def check_metrics_json(path: str) -> int:
    with open(path) as handle:
        try:
            doc = json.load(handle)
        except ValueError as exc:
            _fail(path, f"not valid JSON: {exc}")
    for key in ("metrics", "stats"):
        if key not in doc:
            _fail(path, f"missing top-level key {key!r}")
    for subtree in ("session", "planner", "plan_cache", "catalog"):
        if subtree not in doc["stats"]:
            _fail(path, f"stats tree missing {subtree!r} subtree")
    return len(doc["metrics"])


def check_slow_queries(path: str) -> int:
    entries = 0
    with open(path) as handle:
        for lineno, line in enumerate(handle, 1):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except ValueError as exc:
                _fail(path, f"line {lineno}: not valid JSON: {exc}")
            if not isinstance(entry, dict):
                _fail(path, f"line {lineno}: entry is not an object")
            for key in ("text", "seconds"):
                if key not in entry:
                    _fail(path, f"line {lineno}: entry missing {key!r}")
            entries += 1
    return entries


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "metrics_dir", nargs="?",
        help="directory written by serve --metrics-dir",
    )
    parser.add_argument(
        "--require",
        action="append",
        default=None,
        metavar="SPAN",
        help="span name that must appear in spans.jsonl (repeatable; "
        f"default: {', '.join(DEFAULT_REQUIRED_SPANS)})",
    )
    parser.add_argument(
        "--prom",
        metavar="FILE",
        help="check a single Prometheus exposition file instead of a "
        "metrics dump directory (e.g. a scraped /metrics page from "
        "`repro serve --http`)",
    )
    args = parser.parse_args(argv)
    if (args.metrics_dir is None) == (args.prom is None):
        parser.error("pass exactly one of metrics_dir or --prom")
    required = (
        tuple(args.require) if args.require else DEFAULT_REQUIRED_SPANS
    )
    if args.prom:
        try:
            if not os.path.exists(args.prom):
                raise CheckFailure(f"{args.prom}: no such file")
            count = check_prometheus(args.prom)
            print(f"ok {args.prom}: {count} metric families")
        except CheckFailure as exc:
            print(f"obs schema check failed: {exc}", file=sys.stderr)
            return 1
        print(f"exposition at {args.prom} passes the schema check")
        return 0
    checks = [
        ("spans.jsonl", lambda p: check_spans(p, required), "root spans"),
        ("metrics.prom", check_prometheus, "metric families"),
        ("metrics.json", check_metrics_json, "snapshot families"),
        ("slow_queries.jsonl", check_slow_queries, "slow queries"),
    ]
    try:
        for filename, check, unit in checks:
            path = os.path.join(args.metrics_dir, filename)
            if not os.path.exists(path):
                raise CheckFailure(f"{filename}: missing from dump")
            count = check(path)
            print(f"ok {filename}: {count} {unit}")
    except CheckFailure as exc:
        print(f"obs schema check failed: {exc}", file=sys.stderr)
        return 1
    print(f"obs dump at {args.metrics_dir} passes the schema check")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
