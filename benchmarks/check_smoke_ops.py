"""Fail CI on operation-count drift against a committed baseline.

Runs every smoke workload's instrumented form and compares the op
snapshots against ``benchmarks/baselines/smoke_ops.json``.  The paper's
evaluation currency is operation counts, and the arena CDS's contract
is *exact* count equality with the pointer tree — so CI runs this under
both ``REPRO_CDS_BACKEND`` values; any drift (between backends, or
against history) fails loudly instead of silently shifting the
perf-trajectory baselines.

Refresh intentionally after an algorithmic change::

    PYTHONPATH=src python benchmarks/check_smoke_ops.py --update

The baseline stores one snapshot per workload; it is backend-invariant
by construction (that invariance is exactly what the check enforces).
Timing-dependent keys (none today) must not be added to instrumented
snapshots — only deterministic op tallies belong here.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

BASELINE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "baselines", "smoke_ops.json"
)


def collect() -> dict:
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from _workloads import SMOKE_WORKLOADS

    out = {}
    for name in sorted(SMOKE_WORKLOADS):
        _, instrumented = SMOKE_WORKLOADS[name]()
        out[name] = instrumented()
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the committed baseline from this run",
    )
    args = parser.parse_args(argv)
    current = collect()
    backend = os.environ.get("REPRO_CDS_BACKEND", "<default>")
    if args.update:
        os.makedirs(os.path.dirname(BASELINE), exist_ok=True)
        with open(BASELINE, "w") as handle:
            json.dump(current, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {BASELINE} ({len(current)} workloads)")
        return 0
    try:
        with open(BASELINE) as handle:
            baseline = json.load(handle)
    except OSError as exc:
        print(f"cannot read baseline {BASELINE}: {exc}", file=sys.stderr)
        return 2
    failures = []
    for name in sorted(set(baseline) | set(current)):
        if name not in current:
            failures.append(f"{name}: missing from this checkout")
            continue
        if name not in baseline:
            failures.append(f"{name}: not in baseline (run --update)")
            continue
        if baseline[name] != current[name]:
            drift = {
                key: (baseline[name].get(key), current[name].get(key))
                for key in set(baseline[name]) | set(current[name])
                if baseline[name].get(key) != current[name].get(key)
            }
            failures.append(f"{name}: {drift}")
    if failures:
        print(
            f"op-count drift vs {os.path.basename(BASELINE)} "
            f"(cds_backend={backend}):",
            file=sys.stderr,
        )
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(
        f"op counts match baseline for {len(current)} smoke workloads "
        f"(cds_backend={backend})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
