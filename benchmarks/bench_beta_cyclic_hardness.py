"""E10 — Proposition 2.8 / Appendix F.3: beta-cyclic queries stay hard.

On the 4-cycle query with parity-interleaved instances (the simulated
3SUM-hardness embedding, DESIGN.md §2), Minesweeper's work per unit of
certificate *grows* with scale — the measured counterpart of "no
O(|C|^{4/3-ε} + Z) algorithm exists".  The beta-*acyclic* Appendix J
family at growing scale is the contrast: its work/|C| stays flat
(Theorem 2.7).
"""

import math

import pytest

from repro.core.engine import join
from repro.datasets.instances import appendix_j_path, beta_cyclic_cycle

from benchmarks._util import once, record

SIZES = [6, 12, 24]


@pytest.mark.parametrize("n", SIZES)
def test_four_cycle(benchmark, n):
    inst = beta_cyclic_cycle(4, n)
    result = once(benchmark, lambda: join(inst.query, gao=inst.gao))
    assert result.rows == []
    record(
        benchmark,
        "E10_beta_cyclic",
        f"cycle4/n={n}",
        {
            "certificate_scale": inst.certificate_size,
            "work": result.counters.total_work(),
            "work_per_C": round(
                result.counters.total_work() / inst.certificate_size, 2
            ),
        },
    )


def test_exponent_and_contrast(benchmark):
    """work ~ |C|^e with e > 1 for the cycle; e ≈ 1 for Appendix J."""

    def cycle_point(n):
        inst = beta_cyclic_cycle(4, n)
        res = join(inst.query, gao=inst.gao)
        return inst.certificate_size, res.counters.total_work()

    def acyclic_point(block):
        inst = appendix_j_path(5, block)
        res = join(inst.query, gao=inst.gao)
        return inst.certificate_size, res.counters.total_work()

    (c1, w1), (c2, w2) = cycle_point(6), cycle_point(24)
    cycle_exponent = math.log(w2 / w1) / math.log(c2 / c1)
    (a1, v1), (a2, v2) = acyclic_point(8), acyclic_point(32)
    acyclic_exponent = math.log(v2 / v1) / math.log(a2 / a1)
    record(
        benchmark,
        "E10_beta_cyclic",
        "exponents",
        {
            "cyclic_exponent": round(cycle_exponent, 3),
            "acyclic_exponent": round(acyclic_exponent, 3),
        },
    )
    once(benchmark, lambda: None)
    assert cycle_exponent > 1.05  # superlinear in |C|
    assert acyclic_exponent < 1.05  # Theorem 2.7 linearity
