"""E12 (ablation) — Example 4.1: lazy chain-inference memoization.

Algorithm 4 memoizes every inferred gap at the chain node that will be
asked again; Example 4.1 shows this turns a Θ(n³) coverage proof into
O(n²).  We drive the CDS with exactly that constraint workload and flip
``memoize``; the growth-rate separation (and unchanged answers) is the
claim.  A join-level run on the Appendix J family shows the same knob
end-to-end.
"""

import math

import pytest

from repro.core.cds import ConstraintTree
from repro.core.constraints import Constraint
from repro.core.engine import join
from repro.core.probe_acyclic import ChainProbeStrategy
from repro.datasets.instances import appendix_j_path, example_4_1_constraints

from benchmarks._util import once, record


def _coverage_ops(n, memoize):
    cds = ConstraintTree(3)
    for prefix, lo, hi in example_4_1_constraints(n):
        cds.insert(Constraint(prefix, lo, hi))
    cds.counters.reset()
    probe = ChainProbeStrategy(cds, memoize=memoize)
    assert probe.get_probe_point() is None
    return cds.counters.interval_ops


@pytest.mark.parametrize("n", [8, 16])
@pytest.mark.parametrize("memoize", [True, False])
def test_example_4_1(benchmark, n, memoize):
    ops = once(benchmark, lambda: _coverage_ops(n, memoize))
    record(
        benchmark,
        "E12_memoization",
        f"ex41/{'on' if memoize else 'off'}/n={n}",
        {"interval_ops": ops},
    )


def test_growth_separation(benchmark):
    exponents = {}
    for memoize in (True, False):
        small = _coverage_ops(8, memoize)
        large = _coverage_ops(24, memoize)
        exponents[memoize] = math.log(large / small) / math.log(24 / 8)
    record(
        benchmark,
        "E12_memoization",
        "exponents",
        {
            "memoized_exponent": round(exponents[True], 3),
            "bruteforce_exponent": round(exponents[False], 3),
        },
    )
    once(benchmark, lambda: None)
    assert exponents[True] < exponents[False] - 0.5


@pytest.mark.parametrize("memoize", [True, False])
def test_join_level(benchmark, memoize):
    inst = appendix_j_path(5, 16)
    result = once(
        benchmark, lambda: join(inst.query, gao=inst.gao, memoize=memoize)
    )
    assert result.rows == []
    record(
        benchmark,
        "E12_memoization",
        f"appendixJ/{'on' if memoize else 'off'}",
        {"work": result.counters.total_work()},
    )
