"""E2 — Theorem 2.7: Õ(|C| + Z) on beta-acyclic queries with a NEO GAO.

Sweeps the Example 2.1 family (output-heavy) and the Appendix J path
family (certificate-heavy, empty output) and records probe counts against
the analytic |C| + Z; the ratio must stay bounded as the scale grows.
"""

import pytest

from repro.core.engine import join
from repro.datasets.instances import appendix_j_path, example_2_1

from benchmarks._util import once, record


@pytest.mark.parametrize("n", [50, 200, 800])
def test_output_dominated(benchmark, n):
    inst = example_2_1(n)
    result = once(benchmark, lambda: join(inst.query, gao=inst.gao))
    z = len(result)
    probes = result.counters.probes
    record(
        benchmark,
        "E2_beta_acyclic",
        f"example21/n={n}",
        {
            "certificate": inst.certificate_size,
            "output": z,
            "probes": probes,
            "probes_over_C_plus_Z": round(probes / (inst.certificate_size + z), 3),
        },
    )
    assert probes <= 4 * (inst.certificate_size + z) + 16


@pytest.mark.parametrize("block", [8, 16, 32])
def test_certificate_dominated(benchmark, block):
    inst = appendix_j_path(5, block)
    result = once(benchmark, lambda: join(inst.query, gao=inst.gao))
    assert result.rows == []
    probes = result.counters.probes
    record(
        benchmark,
        "E2_beta_acyclic",
        f"appendixJ/m=5,M={block}",
        {
            "certificate": inst.certificate_size,
            "N": inst.query.total_tuples(),
            "probes": probes,
            "probes_over_C": round(probes / inst.certificate_size, 3),
        },
    )
    # Linear in |C| = m·M, with the 2^r, m constants of Theorem 3.2.
    assert probes <= 40 * inst.certificate_size
