"""Perf-regression workload registry (shared by bench_regression / perf_report).

Each workload is a named, deterministic (setup, run, ops) triple over the
library's *default configuration*, defined strictly against the API surface
that has existed since the seed commit — ``triangle_join``,
``intersect_sorted``, ``join``/``Query``/``Relation``, and the dataset
factories.  That lets ``perf_report.py`` execute this very file against an
older checkout (``PYTHONPATH=<old>/src``) to produce directly comparable
baseline timings: the timing always reflects each version's defaults, so
the BENCH_*.json trajectory measures what a default user actually gets.

Run standalone:

    PYTHONPATH=src python benchmarks/_workloads.py --repeat 5 --json

which prints ``{case: {"median_s": ..., "ops": {...}}}``.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from typing import Callable, Dict, List, Tuple

Workload = Tuple[Callable[[], object], str]
# setup() -> state; the registry maps name -> (make_run, description) where
# make_run() returns (run, instrumented) closures over pre-built inputs.


def _triangle_query(r, s, t):
    from repro.core.query import Query
    from repro.storage.relation import Relation

    return Query(
        [
            Relation("R", ["A", "B"], r),
            Relation("S", ["B", "C"], s),
            Relation("T", ["A", "C"], t),
        ]
    )


def _make_dyadic_hard(n: int):
    from repro.core.triangle import triangle_join
    from repro.datasets.instances import triangle_hard
    from repro.util.counters import OpCounters

    r, s, t, _cert = triangle_hard(n)

    def run():
        return triangle_join(r, s, t)

    def instrumented():
        counters = OpCounters()
        triangle_join(r, s, t, counters)
        return counters.snapshot()

    return run, instrumented


def _make_dyadic_planted(n: int, k: int):
    from repro.core.triangle import triangle_join
    from repro.datasets.instances import triangle_with_output
    from repro.util.counters import OpCounters

    r, s, t = triangle_with_output(n, k, seed=5)

    def run():
        return triangle_join(r, s, t)

    def instrumented():
        counters = OpCounters()
        triangle_join(r, s, t, counters)
        return counters.snapshot()

    return run, instrumented


def _make_minesweeper_hard(n: int):
    from repro.core.engine import join
    from repro.datasets.instances import triangle_hard
    from repro.util.counters import OpCounters

    r, s, t, _cert = triangle_hard(n)

    def run():
        return join(
            _triangle_query(r, s, t), gao=["A", "B", "C"], strategy="general"
        )

    def instrumented():
        counters = OpCounters()
        join(
            _triangle_query(r, s, t),
            gao=["A", "B", "C"],
            strategy="general",
            counters=counters,
        )
        return counters.snapshot()

    return run, instrumented


def _make_intersection(factory_name: str, *args, **kwargs):
    from repro.core.intersection import intersect_sorted
    from repro.datasets import instances
    from repro.util.counters import OpCounters

    sets = getattr(instances, factory_name)(*args, **kwargs)

    def run():
        return intersect_sorted(sets)

    def instrumented():
        counters = OpCounters()
        intersect_sorted(sets, counters)
        return counters.snapshot()

    return run, instrumented


def _make_parallel_triangle(n: int, k: int, shards: int, workers: int):
    # repro.parallel arrived in PR 3; older checkouts skip via the
    # ModuleNotFoundError probe below (see measure()).
    import repro.parallel  # noqa: F401

    from repro.core.engine import join
    from repro.datasets.instances import triangle_with_output
    from repro.util.counters import OpCounters

    r, s, t = triangle_with_output(n, k, seed=5)

    def run():
        return join(
            _triangle_query(r, s, t),
            gao=["A", "B", "C"],
            strategy="general",
            shards=shards,
            workers=workers,
        )

    def instrumented():
        # workers=0 (in-process sequential shard execution) tallies the
        # exact same merged counts as the pooled run, deterministically.
        counters = OpCounters()
        join(
            _triangle_query(r, s, t),
            gao=["A", "B", "C"],
            strategy="general",
            counters=counters,
            shards=shards,
            workers=0,
        )
        return counters.snapshot()

    return run, instrumented


def _make_parallel_intersection(n: int, shards: int, workers: int):
    import repro.parallel  # noqa: F401

    from repro.core.engine import join
    from repro.core.query import Query
    from repro.datasets.instances import intersection_interleaved
    from repro.storage.relation import Relation
    from repro.util.counters import OpCounters

    sets = intersection_interleaved(n)

    def query():
        return Query(
            [
                Relation(f"R{i}", ["A"], [(v,) for v in vals])
                for i, vals in enumerate(sets)
            ]
        )

    def run():
        return join(query(), gao=["A"], shards=shards, workers=workers)

    def instrumented():
        counters = OpCounters()
        join(query(), gao=["A"], counters=counters, shards=shards, workers=0)
        return counters.snapshot()

    return run, instrumented


def _make_dynamic(stream_name: str, **params):
    # repro.dynamic arrived in PR 2; on older checkouts (perf_report
    # --baseline-ref) the import fails and measure() skips the workload.
    from repro import dynamic

    stream = getattr(dynamic, stream_name)
    schemas, initial, batches = stream(**params)

    def run():
        catalog, view = dynamic.build_catalog(schemas, initial)
        for batch in batches:
            catalog.apply_batch(batch)
        return view

    def instrumented():
        # rec_* mirrors bench_dynamic.py / EXPERIMENTS.md: the
        # *cumulative* cost of recomputing the view after every batch
        # (the baseline incremental maintenance is measured against).
        _, view, _, rec = dynamic.replay_with_recompute(
            schemas, initial, batches
        )
        snapshot = view.counters.snapshot()
        snapshot["rec_findgap"] = rec["findgap"]
        snapshot["rec_probes"] = rec["probes"]
        return snapshot

    return run, instrumented


def _make_cds_join(backend: str, query_factory, gao, strategy: str):
    # repro.core.cds_arena arrived in PR 4; older checkouts skip via the
    # ModuleNotFoundError probe in measure().
    import repro.core.cds_arena  # noqa: F401

    from repro.core.engine import join
    from repro.util.counters import OpCounters

    # Build the indexes once: the cds/* family times the CDS, not
    # relation construction (the engines never mutate stored relations).
    query = query_factory()

    def run():
        return join(query, gao=gao, strategy=strategy, cds_backend=backend)

    def instrumented():
        counters = OpCounters()
        join(
            query, gao=gao, strategy=strategy, counters=counters,
            cds_backend=backend,
        )
        return counters.snapshot()

    return run, instrumented


def _cds_triangle_query(n: int):
    from repro.datasets.instances import triangle_hard

    r, s, t, _cert = triangle_hard(n)
    return lambda: _triangle_query(r, s, t)


def _cds_bowtie_query(n: int, seed: int = 3):
    import random

    from repro.core.query import Query
    from repro.storage.relation import Relation

    rng = random.Random(seed)
    r = sorted(rng.sample(range(n), n // 4))
    t = sorted(rng.sample(range(n), n // 4))
    s = sorted({(rng.randrange(n), rng.randrange(n)) for _ in range(3 * n)})

    def query():
        return Query(
            [
                Relation("R", ["X"], [(v,) for v in r]),
                Relation("S", ["X", "Y"], s),
                Relation("T", ["Y"], [(v,) for v in t]),
            ]
        )

    return query


def _cds_deep_query(k: int, n: int, seed: int = 11):
    """Path query R1(A0,A1) ⋈ ... ⋈ Rk(A{k-1},Ak): deep CDS patterns."""
    import random

    from repro.core.query import Query
    from repro.storage.relation import Relation

    rng = random.Random(seed)
    # Sparse relations: most probes discover gaps instead of outputs,
    # so the run is CDS-bound (deep chains), not enumeration-bound.
    rels = [
        sorted(
            {(rng.randrange(n), rng.randrange(n)) for _ in range(8 * n // 5)}
        )
        for _ in range(k)
    ]

    def query():
        return Query(
            [
                Relation(f"R{i}", [f"A{i}", f"A{i+1}"], rows)
                for i, rows in enumerate(rels)
            ]
        )

    return query


def _cds_wide_query(m: int, n: int, seed: int = 13):
    """Star query ⋈ᵢ Rᵢ(A, Bᵢ): wide equality fanout under the root."""
    import random

    from repro.core.query import Query
    from repro.storage.relation import Relation

    rng = random.Random(seed)
    rels = [
        sorted({(rng.randrange(n), rng.randrange(n)) for _ in range(2 * n)})
        for _ in range(m)
    ]

    def query():
        return Query(
            [
                Relation(f"R{i}", ["A", f"B{i}"], rows)
                for i, rows in enumerate(rels)
            ]
        )

    return query


def _make_cds_dynamic(backend: str, **params):
    import repro.core.cds_arena  # noqa: F401

    from repro import dynamic
    from repro.util.counters import OpCounters

    schemas, initial, batches = dynamic.triangle_stream(**params)

    def run():
        catalog, view = dynamic.build_catalog(
            schemas, initial, cds_backend=backend
        )
        for batch in batches:
            catalog.apply_batch(batch)
        return view

    def instrumented():
        catalog, view = dynamic.build_catalog(
            schemas, initial, cds_backend=backend
        )
        counters = OpCounters()
        for batch in batches:
            catalog.apply_batch(batch)
        snapshot = view.counters.snapshot()
        snapshot["seed_findgap"] = view.initial_ops.get("findgap", 0)
        return snapshot

    return run, instrumented


def _make_cds_dyadic(backend: str, n: int):
    import repro.core.cds_arena  # noqa: F401

    from repro.core.triangle import triangle_join
    from repro.datasets.instances import triangle_hard
    from repro.util.counters import OpCounters

    r, s, t, _cert = triangle_hard(n)

    def run():
        return triangle_join(r, s, t, cds_backend=backend)

    def instrumented():
        counters = OpCounters()
        triangle_join(r, s, t, counters, cds_backend=backend)
        return counters.snapshot()

    return run, instrumented


def _make_planner(mode: str, n: int, k: int):
    """The serving layer's plan-cold vs plan-cached pair (ISSUE 5).

    ``cold`` builds a fresh session per run, so every execution pays
    parse + validate + plan (candidate scoring on the deterministic
    sample) + execute; ``cached`` warms one session and re-executes the
    same text, so every run is parse + signature lookup + execute —
    the amortization the plan cache exists to provide.  The
    instrumented snapshot carries the planner/cache call counters, so
    the op-drift gate also locks in "cached means zero planning".
    """
    # repro.serve arrived in PR 5; older checkouts skip via the
    # ModuleNotFoundError probe in measure().
    import repro.serve  # noqa: F401

    from repro.datasets.instances import triangle_with_output
    from repro.dynamic import Catalog
    from repro.serve import Session

    r, s, t = triangle_with_output(n, k, seed=5)
    text = "Q(x, y, z) :- R(x, y), S(y, z), T(x, z)"

    def fresh_catalog():
        catalog = Catalog()
        catalog.create_relation("R", ["A", "B"], r)
        catalog.create_relation("S", ["B", "C"], s)
        catalog.create_relation("T", ["A", "C"], t)
        return catalog

    catalog = fresh_catalog()
    if mode == "cached":
        warm = Session(catalog)
        warm.execute(text)

        def run():
            return warm.execute(text)

    else:

        def run():
            return Session(catalog).execute(text)

    def instrumented():
        session = Session(fresh_catalog())
        first = session.execute(text)
        snapshot = dict(
            (first if mode == "cold" else session.execute(text)).ops
        )
        stats = session.stats()
        snapshot["plans_built"] = stats["planner"]["plans_built"]
        snapshot["plan_estimate_runs"] = stats["planner"]["estimate_runs"]
        snapshot["plan_cache_hits"] = stats["plan_cache"]["hits"]
        return snapshot

    return run, instrumented


def _cds_workloads(sizes: dict) -> "Dict[str, Callable]":
    """The ``cds/*`` family: pointer-vs-arena twins per shape.

    Every pair is asserted row- and op-identical by
    ``benchmarks/bench_cds_backends.py``; the registry carries both so
    BENCH_*.json records the backend comparison side by side.
    """
    out: Dict[str, Callable] = {}
    shapes = {
        "triangle/hard/n={n}".format(**sizes): (
            lambda: _cds_triangle_query(sizes["n"]),
            ["A", "B", "C"],
            "general",
        ),
        "bowtie/dense/n={bn}".format(**sizes): (
            lambda: _cds_bowtie_query(sizes["bn"]),
            ["X", "Y"],
            "chain",
        ),
        "deep/path/k={k}/n={dn}".format(**sizes): (
            lambda: _cds_deep_query(sizes["k"], sizes["dn"]),
            [f"A{i}" for i in range(sizes["k"] + 1)],
            "auto",
        ),
        "wide/star/m={m}/n={wn}".format(**sizes): (
            lambda: _cds_wide_query(sizes["m"], sizes["wn"]),
            ["A"] + [f"B{i}" for i in range(sizes["m"])],
            "auto",
        ),
    }
    for shape, (qf, gao, strategy) in shapes.items():
        for backend in ("pointer", "arena"):
            out[f"cds/{shape}/{backend}"] = (
                lambda qf=qf, gao=gao, strategy=strategy, backend=backend: (
                    _make_cds_join(backend, qf(), gao, strategy)
                )
            )
    for backend in ("pointer", "arena"):
        out[f"cds/dynamic/triangle/e={sizes['e']}/{backend}"] = (
            lambda backend=backend: _make_cds_dynamic(
                backend,
                n_nodes=sizes["nodes"], n_edges=sizes["e"],
                n_batches=sizes["batches"], batch_size=8,
                insert_fraction=0.5, seed=12,
            )
        )
        out[f"cds/dyadic/hard/n={sizes['dy']}/{backend}"] = (
            lambda backend=backend: _make_cds_dyadic(backend, sizes["dy"])
        )
    return out


#: name -> zero-argument factory returning (run, instrumented).  Sizes
#: track the paper-experiment benchmarks (bench_triangle.py /
#: bench_set_intersection.py) plus one larger hard instance.
WORKLOADS: Dict[str, Callable] = {
    "triangle/dyadic/hard/n=32": lambda: _make_dyadic_hard(32),
    "triangle/dyadic/hard/n=48": lambda: _make_dyadic_hard(48),
    "triangle/dyadic/planted/n=100": lambda: _make_dyadic_planted(100, 25),
    "triangle/dyadic/planted/n=300": lambda: _make_dyadic_planted(300, 75),
    "triangle/minesweeper/hard/n=16": lambda: _make_minesweeper_hard(16),
    "triangle/minesweeper/hard/n=32": lambda: _make_minesweeper_hard(32),
    "intersection/interleaved/n=20000": lambda: _make_intersection(
        "intersection_interleaved", 20_000
    ),
    "intersection/overlap/k=100": lambda: _make_intersection(
        "intersection_with_overlap", 50_000, 100, seed=4
    ),
    "intersection/blocks/n=100000": lambda: _make_intersection(
        "intersection_blocks", 2, 100_000
    ),
    "dynamic/triangle/mixed/e=200": lambda: _make_dynamic(
        "triangle_stream",
        n_nodes=40, n_edges=200, n_batches=6, batch_size=8,
        insert_fraction=0.5, seed=12,
    ),
    "dynamic/intersection/mixed/n=600": lambda: _make_dynamic(
        "intersection_stream",
        k=3, domain=5000, n_values=600, n_batches=6, batch_size=8,
        insert_fraction=0.5, seed=14,
    ),
    "parallel/triangle/planted/n=500/w=0x4": lambda: (
        _make_parallel_triangle(500, 120, shards=4, workers=0)
    ),
    "parallel/triangle/planted/n=500/w=2x4": lambda: (
        _make_parallel_triangle(500, 120, shards=4, workers=2)
    ),
    "parallel/intersection/interleaved/n=20000/w=0x4": lambda: (
        _make_parallel_intersection(20_000, shards=4, workers=0)
    ),
    "planner/triangle/plan=cold/n=300": lambda: (
        _make_planner("cold", 300, 75)
    ),
    "planner/triangle/plan=cached/n=300": lambda: (
        _make_planner("cached", 300, 75)
    ),
}
WORKLOADS.update(
    _cds_workloads(
        {
            "n": 32, "bn": 2000, "k": 5, "dn": 60, "m": 5, "wn": 40,
            "e": 200, "nodes": 40, "batches": 6, "dy": 48,
        }
    )
)

#: Small-input substitutes for smoke runs (same shapes, trivial sizes).
SMOKE_WORKLOADS: Dict[str, Callable] = {
    "triangle/dyadic/hard/n=8": lambda: _make_dyadic_hard(8),
    "triangle/dyadic/planted/n=40": lambda: _make_dyadic_planted(40, 10),
    "triangle/minesweeper/hard/n=8": lambda: _make_minesweeper_hard(8),
    "intersection/interleaved/n=200": lambda: _make_intersection(
        "intersection_interleaved", 200
    ),
    "intersection/overlap/k=10": lambda: _make_intersection(
        "intersection_with_overlap", 500, 10, seed=4
    ),
    "intersection/blocks/n=1000": lambda: _make_intersection(
        "intersection_blocks", 2, 1_000
    ),
    "dynamic/triangle/mixed/e=20": lambda: _make_dynamic(
        "triangle_stream",
        n_nodes=10, n_edges=20, n_batches=3, batch_size=4,
        insert_fraction=0.5, seed=12,
    ),
    "parallel/triangle/planted/n=40/w=2x2": lambda: (
        _make_parallel_triangle(40, 10, shards=2, workers=2)
    ),
    "planner/triangle/plan=cold/n=40": lambda: (
        _make_planner("cold", 40, 10)
    ),
    "planner/triangle/plan=cached/n=40": lambda: (
        _make_planner("cached", 40, 10)
    ),
}
SMOKE_WORKLOADS.update(
    _cds_workloads(
        {
            "n": 8, "bn": 200, "k": 3, "dn": 12, "m": 3, "wn": 16,
            "e": 20, "nodes": 10, "batches": 3, "dy": 8,
        }
    )
)


def measure(
    names: List[str] = None, repeat: int = 5, smoke: bool = False
) -> Dict[str, dict]:
    """Median wall-clock + op counts per workload, on this interpreter's
    ``repro`` (whichever checkout PYTHONPATH points at)."""
    registry = SMOKE_WORKLOADS if smoke else WORKLOADS
    names = list(registry) if names is None else names
    out: Dict[str, dict] = {}
    for name in names:
        try:
            run, instrumented = registry[name]()
        except ModuleNotFoundError as exc:
            if exc.name not in (
                "repro.dynamic", "repro.parallel", "repro.core.cds_arena",
                "repro.lang", "repro.planner", "repro.serve",
            ):
                raise
            # Workload needs a subsystem this checkout predates
            # (repro.dynamic arrived in PR 2, repro.parallel in PR 3,
            # repro.core.cds_arena in PR 4, lang/planner/serve in PR 5)
            # when baselining against an older ref: skip it;
            # perf_report only diffs names present on both sides.
            # Anything else (a broken import in the current tree)
            # still fails the run.
            print(f"skipping {name}: {exc}", file=sys.stderr)
            continue
        samples = []
        for _ in range(repeat):
            t0 = time.perf_counter()
            run()
            samples.append(time.perf_counter() - t0)
        ops = instrumented()
        out[name] = {
            "median_s": statistics.median(samples),
            "min_s": min(samples),
            "rounds": repeat,
            "ops": ops,
        }
    return out


def profile(
    names: List[str] = None, top: int = 15, smoke: bool = False
) -> None:
    """cProfile each workload once; print the top-N functions.

    The ``repro bench --profile`` entry point: makes hot-path claims
    reproducible from the CLI (sorted by cumulative time, which is what
    "where does the wall-clock go" questions need).
    """
    import cProfile
    import pstats

    registry = SMOKE_WORKLOADS if smoke else WORKLOADS
    names = list(registry) if names is None else names
    unknown = [n for n in names if n not in registry]
    if unknown:
        raise SystemExit(
            f"unknown workloads {unknown}; available: {sorted(registry)}"
        )
    for name in names:
        try:
            run, _ = registry[name]()
        except ModuleNotFoundError as exc:
            if exc.name not in (
                "repro.dynamic", "repro.parallel", "repro.core.cds_arena",
                "repro.lang", "repro.planner", "repro.serve",
            ):
                raise
            print(f"skipping {name}: {exc}", file=sys.stderr)
            continue
        run()  # warm caches/lazy imports outside the profiled run
        profiler = cProfile.Profile()
        profiler.enable()
        run()
        profiler.disable()
        print(f"==== {name}")
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.sort_stats("cumulative").print_stats(top)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeat", type=int, default=5)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny-input variants (plumbing check only)")
    parser.add_argument("--json", action="store_true",
                        help="print machine-readable JSON")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile each workload once and print the "
                        "hottest functions instead of timing")
    parser.add_argument("--top", type=int, default=15,
                        help="rows of cProfile output per workload")
    parser.add_argument("names", nargs="*", help="workload names (default all)")
    args = parser.parse_args(argv)
    if args.profile:
        profile(args.names or None, top=args.top, smoke=args.smoke)
        return 0
    results = measure(args.names or None, repeat=args.repeat, smoke=args.smoke)
    if args.json:
        json.dump(results, sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        for name, row in results.items():
            print(f"{name:40s} {row['median_s'] * 1e3:9.2f} ms")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
