"""E1 — Figure 2: input size N versus certificate size |C|.

The paper's only measured table: for the star / 3-path / tree queries over
three graph datasets, |C| (counted as FindGap operations) is orders of
magnitude below N.  SNAP graphs are substituted with synthetic power-law /
uniform graphs at three size classes (DESIGN.md §2); the reported quantity
is the N/|C| ratio, whose shape (≫ 1, growing with graph size at fixed
sampling rate) is the claim under reproduction.
"""

import pytest

from repro.core.engine import join
from repro.datasets.graphs import power_law_graph, uniform_graph
from repro.datasets.workloads import (
    input_size,
    star_query,
    three_path_query,
    tree_query,
)

from benchmarks._util import once, record

GRAPHS = {
    "epinions-like": power_law_graph(2_000, 10_000, seed=11),
    "livejournal-like": power_law_graph(6_000, 40_000, seed=12),
    "orkut-like": uniform_graph(6_000, 60_000, seed=13),
}
QUERIES = {
    "star": star_query,
    "3-path": three_path_query,
    "tree": tree_query,
}
PROBABILITY = 0.002  # the paper uses 0.001 on graphs 100-1000x larger


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
@pytest.mark.parametrize("query_name", sorted(QUERIES))
def test_fig2(benchmark, query_name, graph_name):
    edges = GRAPHS[graph_name]
    query = QUERIES[query_name](edges, probability=PROBABILITY, seed=99)
    result = once(benchmark, lambda: join(query))
    n = input_size(query)
    cert = result.certificate_estimate
    record(
        benchmark,
        "E1_fig2",
        f"{query_name}/{graph_name}",
        {
            "N": n,
            "certificate_findgap": cert,
            "ratio_N_over_C": round(n / max(cert, 1), 2),
            "output": len(result),
        },
    )
    assert cert < n / 3  # the Figure-2 shape: |C| ≪ N
