"""E13 (ablation) — interval merging & subsumption in the CDS.

Proposition 3.1's amortized O(log W) insertion relies on merging
overlapping intervals (each interval pays for its own eventual
absorption).  With merging off (NaiveIntervalList) the stored list grows
unboundedly and every ``next`` walks it: same answers, asymptotically
worse work.
"""

import pytest

from repro.core.engine import join
from repro.datasets.instances import appendix_j_path, example_2_1
from repro.storage.interval_list import IntervalList, NaiveIntervalList

from benchmarks._util import once, record


@pytest.mark.parametrize("n", [2_000])
@pytest.mark.parametrize("merged", [True, False])
def test_microbench_insert_next(benchmark, n, merged):
    """n overlapping inserts + n next() calls on both implementations."""

    def run():
        il = IntervalList() if merged else NaiveIntervalList()
        for i in range(n):
            il.insert(i, i + 10)
        total = 0
        for i in range(0, n, 7):
            value = il.next(i)
            total += 0 if value is None else 1
        return len(il)

    stored = once(benchmark, run)
    record(
        benchmark,
        "E13_interval_merge",
        f"micro/{'merged' if merged else 'naive'}/n={n}",
        {"stored_intervals": stored},
    )
    if merged:
        assert stored == 1  # everything coalesced
    else:
        assert stored == n


@pytest.mark.parametrize("merged", [True, False])
def test_join_level(benchmark, merged):
    inst = example_2_1(150)
    result = once(
        benchmark,
        lambda: join(inst.query, gao=inst.gao, merge_intervals=merged),
    )
    assert len(result) == inst.output_size
    record(
        benchmark,
        "E13_interval_merge",
        f"example21/{'merged' if merged else 'naive'}",
        {"work": result.counters.total_work()},
    )


@pytest.mark.parametrize("merged", [True, False])
def test_join_level_appendixJ(benchmark, merged):
    inst = appendix_j_path(4, 10)
    result = once(
        benchmark,
        lambda: join(inst.query, gao=inst.gao, merge_intervals=merged),
    )
    assert result.rows == []
    record(
        benchmark,
        "E13_interval_merge",
        f"appendixJ/{'merged' if merged else 'naive'}",
        {"work": result.counters.total_work()},
    )
