"""Supervisor overhead gate: resilience must be ~free when nothing fails.

The supervised pooled path (one monitored process per shard attempt,
death detection, timeouts, retry bookkeeping — see
``repro.parallel.supervisor``) replaced the bare ``Pool.imap`` fan-out.
This bench pins down what that machinery costs on the *fault-free*
pooled triangle workload:

* **rows** — the supervised run, a bare-pool reference run over the
  identical shard payloads, and the unsharded sequential engine must
  all return byte-identical row lists;
* **ops** — the instrumented snapshot of the smoke-sized workload
  (in-process and pooled-supervised alike) must equal the committed
  ``benchmarks/baselines/smoke_ops.json`` entry exactly: supervision
  must not change what work was done;
* **time** — min-over-rounds supervised wall clock must stay within
  ``MAX_OVERHEAD`` (3%) of the bare-pool reference, plus a small
  absolute epsilon absorbing process-spawn scheduler jitter on tiny
  smoke inputs.

The bare-pool reference rebuilds exactly what the pre-supervisor
executor did: ``plan_and_slice`` + ``multiprocessing.Pool.imap`` over
the same ``_run_shard`` payloads, so the delta is the supervisor's
Pipe polling and per-attempt bookkeeping and nothing else.
"""

import json
import multiprocessing
import os
import time

from repro.core.cds_arena import resolve_cds_backend
from repro.core.engine import join
from repro.core.query import Query
from repro.datasets.instances import triangle_with_output
from repro.parallel.executor import _run_shard, run_sharded
from repro.parallel.planner import plan_and_slice
from repro.storage.relation import Relation
from repro.util.counters import NullCounters, OpCounters

from benchmarks._util import record, sizes

ROUNDS = sizes(5, 3)
WORKERS = 2
SHARDS = 2
#: Supervised pooled time may exceed the bare-pool reference by at most
#: this fraction on the fault-free workload ...
MAX_OVERHEAD = 0.03
#: ... plus this many seconds of absolute slack (process spawn times on
#: a loaded single-core CI box jitter by more than 3% of a smoke run).
ABS_SLACK_S = 0.005

BASELINE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "baselines",
    "smoke_ops.json",
)
#: The committed smoke-ops key this bench re-derives and re-checks.
BASELINE_KEY = "parallel/triangle/planted/n=40/w=2x2"

CASES = sizes(
    [("planted/n=500", 500, 120)],
    [("planted/n=40", 40, 10)],
)
GAO = ["A", "B", "C"]


def _triangle_query(n, k):
    r, s, t = triangle_with_output(n, k, seed=5)
    return Query(
        [
            Relation("R", ["A", "B"], r),
            Relation("S", ["B", "C"], s),
            Relation("T", ["A", "C"], t),
        ]
    )


def _bare_pool_run(relations):
    """The pre-supervisor pooled path: plan, slice, ``Pool.imap``."""
    cds_backend = resolve_cds_backend(None)
    plan, slices = plan_and_slice(relations, GAO[0], SHARDS)
    payloads = [
        (
            shard_rels, list(GAO), "general", True, True, None, False,
            cds_backend, shard.lo, shard.hi, None,
        )
        for shard, shard_rels in zip(plan, slices)
    ]
    rows = []
    with multiprocessing.get_context().Pool(
        min(WORKERS, len(payloads))
    ) as pool:
        for shard_rows, _counters in pool.imap(
            _run_shard, payloads, chunksize=1
        ):
            rows.extend(shard_rows)
    return rows


def _supervised_run(relations):
    return run_sharded(
        relations,
        GAO,
        SHARDS,
        workers=WORKERS,
        strategy="general",
        counters=NullCounters(),
    ).rows


def _min_time(func):
    best = None
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        func()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best


def _smoke_ops_snapshots():
    """Instrumented op snapshots of the baseline-keyed smoke workload,
    in-process sequential and pooled supervised."""
    snapshots = {}
    for mode, workers in (("inproc", 0), ("pooled", WORKERS)):
        counters = OpCounters()
        join(
            _triangle_query(40, 10),
            gao=GAO,
            strategy="general",
            counters=counters,
            shards=SHARDS,
            workers=workers,
        )
        snapshots[mode] = counters.snapshot()
    return snapshots


def test_supervisor_overhead_fault_free(benchmark):
    case, n, k = CASES[0]

    # --- op gate: supervision must not change the committed tallies ---
    with open(BASELINE) as handle:
        baseline = json.load(handle)[BASELINE_KEY]
    snapshots = _smoke_ops_snapshots()
    assert snapshots["inproc"] == baseline, (
        "in-process sharded op snapshot drifted from smoke_ops.json"
    )
    assert snapshots["pooled"] == baseline, (
        "supervised pooled op snapshot drifted from smoke_ops.json"
    )

    # --- row gate: supervised == bare pool == sequential, bytewise ---
    prepared = _triangle_query(n, k).with_gao(GAO, counters=NullCounters())
    relations = list(prepared.relations)
    seq = join(_triangle_query(n, k), gao=GAO, strategy="general")
    sup_rows = _supervised_run(relations)
    bare_rows = _bare_pool_run(relations)
    assert sup_rows == seq.rows
    assert bare_rows == seq.rows

    # --- time gate: the supervisor is within MAX_OVERHEAD of bare ---
    bare_s = _min_time(lambda: _bare_pool_run(relations))
    sup_s = _min_time(lambda: _supervised_run(relations))
    overhead = (sup_s - bare_s) / bare_s if bare_s > 0 else 0.0
    metrics = {
        "rows": len(seq.rows),
        "bare_pool_s": bare_s,
        "supervised_s": sup_s,
        "overhead_frac": round(overhead, 4),
    }
    benchmark.pedantic(
        lambda: _supervised_run(relations), rounds=ROUNDS, iterations=1
    )
    record(benchmark, "RESILIENCE_overhead", case, metrics)
    assert sup_s <= bare_s * (1.0 + MAX_OVERHEAD) + ABS_SLACK_S, (
        f"supervised pooled run {sup_s:.4f}s exceeds bare-pool "
        f"reference {bare_s:.4f}s by more than {MAX_OVERHEAD:.0%} "
        f"(+{ABS_SLACK_S * 1000:.0f}ms slack): {overhead:.1%} overhead"
    )
