"""Durability benchmark: WAL overhead and recovery cost (ISSUE 6).

Two questions the durable catalog must answer with numbers:

* **Write amplification** — what does journaling every batch cost on
  the ingest path?  Each case replays the same deterministic triangle
  update stream with no WAL, then with the WAL under each fsync policy
  (``off`` / ``batch`` / ``always``), and records wall time plus the
  overhead ratio vs the non-durable baseline.  ``always`` pays a real
  fsync per batch and is expected to dominate; ``batch`` is the
  deployment default.

* **Recovery time vs log length** — how long until a crashed catalog
  serves again?  Replay N batches durably, drop the catalog, and time
  ``recover_catalog`` from a cold directory at increasing N — once
  WAL-only, once from a snapshot + WAL suffix, recording both plus the
  snapshot's own write cost.  The claim worth guarding: snapshot +
  suffix recovery does not grow with the *total* history, only with
  the suffix.
"""

import shutil

import pytest

from repro.dynamic import recover_catalog, triangle_stream
from repro.dynamic.durable import open_catalog

from benchmarks._util import once, record, sizes

_FULL = dict(n_nodes=40, n_edges=200, insert_fraction=0.6, seed=21)
_TINY = dict(n_nodes=10, n_edges=20, insert_fraction=0.6, seed=21)

STREAM = sizes(
    dict(_FULL, n_batches=40, batch_size=8),
    dict(_TINY, n_batches=4, batch_size=4),
)

FSYNC_CASES = ["none", "off", "batch", "always"]

RECOVERY_LENGTHS = sizes([10, 40, 160], [3, 6])


def _stream():
    schemas, initial, batches = triangle_stream(**STREAM)
    return schemas, initial, batches


def _mean_seconds(benchmark):
    # Smoke runs (`repro bench --smoke`) disable timing collection;
    # the op-count metrics still record, wall time just reads 0.
    stats = getattr(benchmark, "stats", None)
    return stats.stats.mean if stats is not None else 0.0


def _build(schemas, initial, data_dir=None, fsync="batch"):
    """A catalog over the stream's schema, durable when data_dir set."""
    if data_dir is None:
        from repro.dynamic import Catalog

        catalog = Catalog()
    else:
        catalog, _ = open_catalog(str(data_dir), fsync=fsync)
    for name, attrs in schemas.items():
        catalog.create_relation(name, attrs, initial[name])
    return catalog


def _replay(catalog, batches):
    for batch in batches:
        catalog.apply_batch(batch)
    if catalog.wal is not None:
        catalog.wal.close()


@pytest.mark.parametrize("policy", FSYNC_CASES)
def test_wal_ingest_overhead(benchmark, tmp_path, policy):
    schemas, initial, batches = _stream()

    def run():
        target = tmp_path / f"run-{policy}"
        if target.exists():
            shutil.rmtree(target)
        data_dir = None if policy == "none" else target
        catalog = _build(
            schemas, initial, data_dir=data_dir,
            fsync=policy if policy != "none" else "batch",
        )
        _replay(catalog, batches)
        return catalog

    catalog = once(benchmark, run)
    n_updates = sum(len(b) for b in batches)
    metrics = {
        "batches": len(batches),
        "updates": n_updates,
        "seconds": _mean_seconds(benchmark),
    }
    if policy != "none":
        stats = catalog.stats()["wal"]
        metrics["wal_records"] = stats["appended"]
        metrics["wal_fsyncs"] = stats["fsyncs"]
    record(benchmark, "durability-ingest", f"fsync-{policy}", metrics)


@pytest.mark.parametrize("n_batches", RECOVERY_LENGTHS)
def test_recovery_wal_only(benchmark, tmp_path, n_batches):
    schemas, initial, batches = _stream()
    batches = batches[:n_batches] if len(batches) >= n_batches else (
        batches * (n_batches // max(len(batches), 1) + 1)
    )[:n_batches]
    data_dir = str(tmp_path / "state")
    catalog = _build(schemas, initial, data_dir=data_dir, fsync="off")
    _replay(catalog, batches)

    def recover():
        recovered, report = recover_catalog(data_dir, attach=False)
        return report

    report = once(benchmark, recover)
    record(
        benchmark,
        "durability-recovery",
        f"wal-only/{n_batches}-batches",
        {
            "batches": n_batches,
            "records_replayed": report.records_replayed,
            "seconds": _mean_seconds(benchmark),
        },
    )


@pytest.mark.parametrize("n_batches", RECOVERY_LENGTHS)
def test_recovery_snapshot_plus_suffix(benchmark, tmp_path, n_batches):
    """Snapshot after the bulk, a short WAL suffix after it."""
    schemas, initial, batches = _stream()
    batches = batches[:n_batches] if len(batches) >= n_batches else (
        batches * (n_batches // max(len(batches), 1) + 1)
    )[:n_batches]
    suffix = max(1, len(batches) // 10)
    data_dir = str(tmp_path / "state")
    catalog = _build(schemas, initial, data_dir=data_dir, fsync="off")
    for batch in batches[:-suffix]:
        catalog.apply_batch(batch)
    info = catalog.snapshot(truncate_wal=True)
    for batch in batches[-suffix:]:
        catalog.apply_batch(batch)
    catalog.wal.close()

    def recover():
        recovered, report = recover_catalog(data_dir, attach=False)
        return report

    report = once(benchmark, recover)
    assert report.snapshot_id == info.snapshot_id
    assert report.verified
    record(
        benchmark,
        "durability-recovery",
        f"snapshot+suffix/{n_batches}-batches",
        {
            "batches": n_batches,
            "suffix_batches": suffix,
            "records_replayed": report.records_replayed,
            "snapshot_write_seconds": info.seconds,
            "seconds": _mean_seconds(benchmark),
        },
    )
